//! A tiny blocking client for the wire protocol — used by the tests, the
//! `serve_demo` example, and the throughput bench; also the reference for
//! writing clients in other languages.
//!
//! Two usage modes:
//!
//! * **Sequential** — [`Client::call`] and the typed wrappers send one
//!   request and block for its response.
//! * **Pipelined** — [`Client::send`] writes a request and returns its id
//!   without waiting; [`Client::recv`] blocks for the *next* response on
//!   the wire, whichever request it answers. Under the event-loop server
//!   runtime responses complete out of order, so callers match responses
//!   to ids themselves (every [`Response`] echoes one). Keeping several
//!   requests in flight on one connection hides round-trip and queueing
//!   latency.
//!
//! Server-side typed error payloads become [`ClientError::Server`], so
//! callers can match on the [`ErrorCode`].

use crate::frame::{write_frame, FrameError, FrameReader};
use crate::proto::{
    Algo, CompareScores, DecodeError, ErrorCode, InstanceInfo, Request, Response, SearchResults,
    ServerStats,
};
use std::io;
use std::net::{TcpStream, ToSocketAddrs};

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(io::Error),
    /// The server violated the framing protocol.
    Frame(FrameError),
    /// The server sent an undecodable or unexpected response.
    Protocol(String),
    /// The server answered with a typed error payload.
    Server {
        /// Machine-readable failure class.
        code: ErrorCode,
        /// Human-readable detail from the server.
        message: String,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "I/O error: {e}"),
            ClientError::Frame(e) => write!(f, "framing error: {e}"),
            ClientError::Protocol(e) => write!(f, "protocol error: {e}"),
            ClientError::Server { code, message } => write!(f, "server error [{code}]: {message}"),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(e) => Some(e),
            ClientError::Frame(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        ClientError::Frame(e)
    }
}

impl From<DecodeError> for ClientError {
    fn from(e: DecodeError) -> Self {
        ClientError::Protocol(e.to_string())
    }
}

impl ClientError {
    /// The server-side error code, if this is a typed server error.
    pub fn server_code(&self) -> Option<ErrorCode> {
        match self {
            ClientError::Server { code, .. } => Some(*code),
            _ => None,
        }
    }
}

/// Options for [`Client::compare`].
#[derive(Debug, Clone, Copy, Default)]
pub struct CompareOptions {
    /// λ penalty override (`None` = server default).
    pub lambda: Option<f64>,
    /// Per-request deadline in milliseconds (`None` = server default).
    pub budget_ms: Option<u64>,
}

/// A blocking connection to an `ic-serve` server.
#[derive(Debug)]
pub struct Client {
    writer: TcpStream,
    reader: FrameReader<TcpStream>,
    next_id: u64,
}

impl Client {
    /// Connects to a running server.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Self {
            writer,
            reader: FrameReader::new(stream),
            next_id: 1,
        })
    }

    /// Sends `req` (overriding its id with a fresh one) and blocks for the
    /// response carrying that id. The raw protocol-level call; the typed
    /// wrappers below are usually more convenient.
    ///
    /// Responses to other ids (from interleaved [`send`](Self::send)s) are
    /// skipped and **dropped** — don't mix `call` with outstanding
    /// pipelined requests you still care about.
    pub fn call(&mut self, req: Request) -> Result<Response, ClientError> {
        let id = self.send(req)?;
        loop {
            let resp = self.recv()?;
            if resp.id() == id {
                return Ok(resp);
            }
        }
    }

    /// Pipelined mode: writes `req` (overriding its id with a fresh one)
    /// and returns that id immediately, without waiting for the response.
    /// Pair with [`recv`](Self::recv) and match ids yourself; any number
    /// of requests may be in flight on one connection.
    pub fn send(&mut self, mut req: Request) -> Result<u64, ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        set_id(&mut req, id);
        write_frame(&mut self.writer, &req.encode())?;
        Ok(id)
    }

    /// Pipelined mode: blocks for the next response on the wire — for
    /// *any* in-flight id. Under the event-loop server runtime, responses
    /// arrive in completion order, not send order.
    pub fn recv(&mut self) -> Result<Response, ClientError> {
        let payload = self.reader.next_frame()?;
        Ok(Response::decode(&payload)?)
    }

    /// Loads a CSV directory into the server catalog under `name`;
    /// returns the number of tuples loaded.
    pub fn load(&mut self, name: &str, dir: &str) -> Result<u64, ClientError> {
        match self.call(Request::Load {
            id: 0,
            name: name.into(),
            dir: dir.into(),
        })? {
            Response::Loaded { tuples, .. } => Ok(tuples),
            other => Err(unexpected(other)),
        }
    }

    /// Lists the catalog.
    pub fn list(&mut self) -> Result<Vec<InstanceInfo>, ClientError> {
        match self.call(Request::List { id: 0 })? {
            Response::Listing { instances, .. } => Ok(instances),
            other => Err(unexpected(other)),
        }
    }

    /// Compares two catalog instances with `algo`.
    pub fn compare(
        &mut self,
        left: &str,
        right: &str,
        algo: Algo,
        opts: CompareOptions,
    ) -> Result<CompareScores, ClientError> {
        match self.call(Request::Compare {
            id: 0,
            left: left.into(),
            right: right.into(),
            algo,
            lambda: opts.lambda,
            budget_ms: opts.budget_ms,
        })? {
            Response::Compared { scores, .. } => Ok(scores),
            other => Err(unexpected(other)),
        }
    }

    /// Ranks the catalog against the instance named `query`, returning at
    /// most `k` hits ordered by `(score desc, name asc)`. Hit scores are
    /// bit-identical to unbudgeted [`compare`](Self::compare) calls on the
    /// same pairs; the prefilter only decides which entries get scored.
    pub fn search(
        &mut self,
        query: &str,
        k: u64,
        opts: CompareOptions,
    ) -> Result<SearchResults, ClientError> {
        match self.call(Request::Search {
            id: 0,
            query: query.into(),
            k,
            lambda: opts.lambda,
            budget_ms: opts.budget_ms,
        })? {
            Response::Searched { results, .. } => Ok(results),
            other => Err(unexpected(other)),
        }
    }

    /// Fetches server statistics.
    pub fn stats(&mut self) -> Result<ServerStats, ClientError> {
        match self.call(Request::Stats { id: 0 })? {
            Response::Stats { stats, .. } => Ok(stats),
            other => Err(unexpected(other)),
        }
    }

    /// Asks the server to shut down gracefully. The server acknowledges,
    /// drains in-flight work, and closes; this connection is done.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.call(Request::Shutdown { id: 0 })? {
            Response::ShuttingDown { .. } => Ok(()),
            other => Err(unexpected(other)),
        }
    }
}

fn set_id(req: &mut Request, new_id: u64) {
    match req {
        Request::Load { id, .. }
        | Request::List { id }
        | Request::Compare { id, .. }
        | Request::Search { id, .. }
        | Request::Stats { id }
        | Request::Shutdown { id } => *id = new_id,
    }
}

fn unexpected(resp: Response) -> ClientError {
    match resp {
        Response::Error { code, message, .. } => ClientError::Server { code, message },
        other => ClientError::Protocol(format!("unexpected response kind: {other:?}")),
    }
}
