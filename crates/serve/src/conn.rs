//! Per-connection state machines and the event-loop driver
//! ([`crate::server::Runtime::EventLoop`]).
//!
//! One thread owns the listener, every connection, and a [`Poller`]. Each
//! connection is a small state machine: the incremental [`FrameReader`]
//! consumes readable bytes into frames, decoded requests are classified
//! exactly like the threaded runtime's (same [`crate::server::classify`]),
//! and responses accumulate in a per-connection write buffer flushed by
//! writable readiness.
//!
//! ## Pipelining and out-of-order completion
//!
//! A readable connection is drained frame by frame; every `compare`/
//! `search` frame is admitted to the worker queue *immediately* — the loop
//! never waits for one response before reading the next request. A worker
//! finishes by posting `(connection token, response)` on a channel and
//! waking the poller; the driver routes it back by token. Responses
//! therefore complete in whatever order the workers finish, and clients
//! match them by the echoed `id` (the protocol has always carried it).
//!
//! ## Tokens and slot reuse
//!
//! Connections live in a slab; the epoll token is `generation << 32 |
//! slot`, and the generation bumps on close. A completion (or a stale
//! kernel event) carrying an old token fails the generation check and is
//! dropped instead of reaching whichever connection reused the slot.
//!
//! ## Backpressure
//!
//! Buffered unsent bytes are capped by
//! [`ServerConfig::max_write_buffer`](crate::server::ServerConfig): a peer
//! that keeps sending requests but stops reading responses crosses the cap
//! and is closed (counted as a backpressure disconnect), freeing its
//! memory. Well-behaved connections never notice.
//!
//! ## Drain
//!
//! On shutdown the listener is deregistered, reads stop, and the loop
//! stays alive until every admitted job has been routed and flushed —
//! then it gives stalled peers
//! [`drain_grace`](crate::server::ServerConfig::drain_grace) to take
//! delivery before force-closing them. No admitted request is dropped.

use crate::frame::{write_frame, FrameError, FrameReader};
use crate::lockutil::lock_recover;
use crate::poll::{Event, Interest, Poller, WakeFd, TOKEN_LISTENER, TOKEN_WAKE};
use crate::proto::{ErrorCode, Request, Response};
use crate::server::{
    classify, decode_error_response, overloaded_response, shutting_down_response, too_large,
    Action, Job, ReplyTo, Shared,
};
use std::io::{self, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::Ordering;
use std::sync::mpsc::{Receiver, Sender, SyncSender, TrySendError};
use std::sync::Arc;
use std::time::Instant;

fn token_for(idx: usize, gen: u32) -> u64 {
    ((gen as u64) << 32) | idx as u64
}

/// Why a connection was closed (maps onto the [`ConnCounters`]
/// fields exposed through `ServerHandle::conn_stats`).
///
/// [`ConnCounters`]: crate::server::ConnCounters
enum Close {
    Peer,
    Protocol,
    Backpressure,
    Drained,
    Idle,
}

/// One connection's state: the framing reader (which owns the socket),
/// the outbound buffer, and its pipelining bookkeeping.
struct Conn {
    reader: FrameReader<TcpStream>,
    /// Encoded, unsent response bytes; `wpos` marks the flushed prefix.
    wbuf: Vec<u8>,
    wpos: usize,
    /// Admitted jobs whose responses have not yet been routed back.
    inflight: usize,
    /// No further reads: flush what is queued (and wait out `inflight`),
    /// then close.
    draining: bool,
    /// Interest currently registered with the poller (dedupes `epoll_ctl`).
    interest: Interest,
    /// When this connection last showed frame activity (readable bytes or
    /// a routed completion); the idle sweep closes quiet connections past
    /// [`ServerConfig::idle_timeout`](crate::server::ServerConfig).
    last_activity: Instant,
}

impl Conn {
    fn pending(&self) -> usize {
        self.wbuf.len() - self.wpos
    }

    /// Appends one encoded response frame to the write buffer. `false` if
    /// the response could not be framed (payload over the protocol bound)
    /// — the connection cannot be answered coherently and must close.
    fn queue_response(&mut self, resp: &Response) -> bool {
        write_frame(&mut self.wbuf, &resp.encode()).is_ok()
    }

    /// Writes as much buffered output as the socket accepts right now.
    fn flush(&mut self) -> io::Result<()> {
        while self.wpos < self.wbuf.len() {
            // `&TcpStream` implements `Write`; going through the reader's
            // reference avoids a second descriptor from `try_clone`.
            let mut sock: &TcpStream = self.reader.get_ref();
            match sock.write(&self.wbuf[self.wpos..]) {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(n) => self.wpos += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        if self.wpos == self.wbuf.len() {
            self.wbuf.clear();
            self.wpos = 0;
        } else if self.wpos > 32 * 1024 {
            // Reclaim the flushed prefix so a long-lived connection's
            // buffer tracks its *pending* bytes, not its history.
            self.wbuf.drain(..self.wpos);
            self.wpos = 0;
        }
        Ok(())
    }
}

/// Runs the event loop until shutdown completes. Spawned on the
/// `ic-serve-loop` thread by `Server::start`; the poller arrives with the
/// listener and wake fd already registered (so registration errors
/// surfaced at startup).
pub(crate) fn run_event_loop(
    shared: &Arc<Shared>,
    poller: Poller,
    listener: TcpListener,
    wake: &Arc<WakeFd>,
    completions_tx: Sender<(u64, Response)>,
    completions_rx: Receiver<(u64, Response)>,
) {
    let queue = lock_recover(&shared.queue).clone();
    Driver {
        shared,
        poller,
        listener,
        wake,
        ctx: completions_tx,
        crx: completions_rx,
        queue,
        slots: Vec::new(),
        gens: Vec::new(),
        free: Vec::new(),
        inflight_total: 0,
        draining: false,
    }
    .run();
}

struct Driver<'a> {
    shared: &'a Arc<Shared>,
    poller: Poller,
    listener: TcpListener,
    wake: &'a Arc<WakeFd>,
    /// Cloned into every admitted job's [`ReplyTo`].
    ctx: Sender<(u64, Response)>,
    crx: Receiver<(u64, Response)>,
    /// The admission queue; `None` only if the server was already
    /// stopping when the loop started.
    queue: Option<SyncSender<Job>>,
    /// Connection slab + generation counters + free list.
    slots: Vec<Option<Conn>>,
    gens: Vec<u32>,
    free: Vec<usize>,
    /// Jobs admitted but not yet routed back, across all connections
    /// (including ones closed while their jobs were in flight).
    inflight_total: usize,
    draining: bool,
}

impl Driver<'_> {
    fn run(&mut self) {
        let mut events: Vec<Event> = Vec::with_capacity(256);
        let mut flush_deadline: Option<Instant> = None;
        loop {
            let timeout = self.shared.cfg.poll_interval.as_millis().clamp(1, 1000) as i32;
            events.clear();
            if self.poller.wait(&mut events, timeout).is_err() {
                // The poller itself failed — unrecoverable; drop every
                // connection rather than spin.
                return;
            }
            for ev in &events {
                self.dispatch(*ev);
            }
            self.route_completions();
            if !self.draining {
                self.sweep_idle();
            }

            if self.shared.stopping() && !self.draining {
                self.begin_drain();
            }
            if self.draining {
                self.sweep_finished();
                if self.inflight_total == 0 {
                    if self.slots.iter().all(Option::is_none) {
                        return;
                    }
                    // Everything is computed and queued; what remains is
                    // peers slow to take delivery. Give them the grace
                    // window, then force-close.
                    match flush_deadline {
                        None => {
                            flush_deadline = Some(Instant::now() + self.shared.cfg.drain_grace);
                        }
                        Some(deadline) if Instant::now() >= deadline => {
                            for idx in 0..self.slots.len() {
                                if self.slots[idx].is_some() {
                                    self.close(idx, Close::Drained);
                                }
                            }
                            return;
                        }
                        Some(_) => {}
                    }
                }
            }
        }
    }

    fn dispatch(&mut self, ev: Event) {
        match ev.token {
            TOKEN_WAKE => self.wake.drain(),
            TOKEN_LISTENER => self.accept_ready(),
            token => {
                let idx = (token & u64::from(u32::MAX)) as usize;
                let gen = (token >> 32) as u32;
                // Stale tokens (slot already closed and maybe reused) are
                // dropped by the generation check.
                if idx >= self.slots.len() || self.gens[idx] != gen || self.slots[idx].is_none() {
                    return;
                }
                if ev.failed {
                    self.close(idx, Close::Peer);
                    return;
                }
                if ev.readable {
                    if let Some(why) = self.readable(idx) {
                        self.close(idx, why);
                        return;
                    }
                }
                self.settle(idx);
            }
        }
    }

    /// Accepts until the listener would block. New connections during
    /// drain are refused by immediate close.
    fn accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    if self.draining || self.shared.stopping() {
                        continue; // dropped: refused
                    }
                    self.register(stream);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return,
            }
        }
    }

    fn register(&mut self, stream: TcpStream) {
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        let _ = stream.set_nodelay(true);
        let idx = self.free.pop().unwrap_or_else(|| {
            self.slots.push(None);
            self.gens.push(0);
            self.slots.len() - 1
        });
        let conn = Conn {
            reader: FrameReader::with_max_len(stream, self.shared.cfg.max_frame_len),
            wbuf: Vec::new(),
            wpos: 0,
            inflight: 0,
            draining: false,
            interest: Interest::READ,
            last_activity: Instant::now(),
        };
        let fd = conn.reader.get_ref().as_raw_fd();
        if self
            .poller
            .add(fd, token_for(idx, self.gens[idx]), Interest::READ)
            .is_err()
        {
            self.free.push(idx);
            return; // conn drops here, closing the socket
        }
        self.shared.conns.accepted.fetch_add(1, Ordering::Relaxed);
        self.slots[idx] = Some(conn);
    }

    /// Drains readable frames from one connection, classifying and
    /// admitting each. Returns a close reason if the connection is done.
    fn readable(&mut self, idx: usize) -> Option<Close> {
        let shared = self.shared;
        let wake = self.wake;
        let tok = token_for(idx, self.gens[idx]);
        let Self {
            slots,
            queue,
            ctx,
            inflight_total,
            ..
        } = self;
        let conn = slots[idx].as_mut()?;
        conn.last_activity = Instant::now();

        loop {
            if conn.draining {
                return None;
            }
            if conn.pending() > shared.cfg.max_write_buffer {
                // The peer is writing requests faster than it reads
                // responses; admitting more would buffer without bound.
                return Some(Close::Backpressure);
            }
            match conn.reader.poll_frame() {
                Ok(None) => return None, // no complete frame buffered
                Ok(Some(payload)) => match Request::decode(&payload) {
                    Err(err) => {
                        // Framing intact, payload undecodable: fail this
                        // request only; the pipeline continues.
                        shared.errors.fetch_add(1, Ordering::Relaxed);
                        if !conn.queue_response(&decode_error_response(&payload, &err)) {
                            return Some(Close::Protocol);
                        }
                    }
                    Ok(req) => match classify(shared, req) {
                        Action::Respond { resp, close } => {
                            if !conn.queue_response(&resp) {
                                return Some(Close::Protocol);
                            }
                            if close {
                                conn.draining = true;
                                return None;
                            }
                        }
                        Action::Admit {
                            id,
                            kind,
                            snapshot,
                            deadline,
                        } => {
                            let Some(q) = queue.as_ref() else {
                                if !conn.queue_response(&shutting_down_response(id)) {
                                    return Some(Close::Protocol);
                                }
                                conn.draining = true;
                                return None;
                            };
                            let job = Job {
                                id,
                                kind,
                                snapshot,
                                deadline,
                                reply: ReplyTo::Token {
                                    token: tok,
                                    tx: ctx.clone(),
                                    wake: Arc::clone(wake),
                                },
                            };
                            match q.try_send(job) {
                                Ok(()) => {
                                    conn.inflight += 1;
                                    *inflight_total += 1;
                                }
                                Err(TrySendError::Full(_)) => {
                                    if !conn.queue_response(&overloaded_response(shared, id)) {
                                        return Some(Close::Protocol);
                                    }
                                }
                                Err(TrySendError::Disconnected(_)) => {
                                    if !conn.queue_response(&shutting_down_response(id)) {
                                        return Some(Close::Protocol);
                                    }
                                    conn.draining = true;
                                    return None;
                                }
                            }
                        }
                    },
                },
                Err(FrameError::TooLarge(n)) => {
                    // Recoverable by design: the reader skips the payload
                    // without buffering it; answer typed and keep going.
                    shared.errors.fetch_add(1, Ordering::Relaxed);
                    if !conn.queue_response(&too_large(n)) {
                        return Some(Close::Protocol);
                    }
                }
                Err(FrameError::Closed) | Err(FrameError::Truncated) | Err(FrameError::Io(_)) => {
                    return Some(Close::Peer);
                }
                Err(e) => {
                    // BadHeader / MissingTerminator: no way to find the
                    // next frame boundary. One best-effort typed error,
                    // flush, close — same contract as the threaded runtime.
                    shared.errors.fetch_add(1, Ordering::Relaxed);
                    shared.conns.closed_protocol.fetch_add(1, Ordering::Relaxed);
                    let _ = conn.queue_response(&Response::Error {
                        id: 0,
                        code: ErrorCode::Malformed,
                        message: e.to_string(),
                    });
                    conn.draining = true;
                    return None;
                }
            }
        }
    }

    /// Routes finished jobs back to their connections by token.
    ///
    /// Writev-style flush batching: every completion drained this tick is
    /// *queued* first, and each touched connection is settled exactly once
    /// afterwards — so pipelined responses finishing together leave in one
    /// write syscall instead of one per response. Frames that rode such a
    /// batch behind an earlier frame are counted in
    /// [`ConnStats::coalesced_frames`](crate::server::ConnStats).
    fn route_completions(&mut self) {
        // (slot, frames queued this tick); tiny per tick, linear scan is
        // cheaper than a hash map.
        let mut dirty: Vec<(usize, u64)> = Vec::new();
        while let Ok((token, resp)) = self.crx.try_recv() {
            self.inflight_total -= 1;
            let idx = (token & u64::from(u32::MAX)) as usize;
            let gen = (token >> 32) as u32;
            if idx >= self.slots.len() || self.gens[idx] != gen {
                continue; // connection closed while the job ran
            }
            let Some(conn) = self.slots[idx].as_mut() else {
                continue;
            };
            conn.inflight -= 1;
            conn.last_activity = Instant::now();
            if !conn.queue_response(&resp) {
                // `close` bumps the generation; the slot (if reused later)
                // is settled harmlessly — settle on a free slot is a no-op
                // and nothing registers new connections in this loop.
                self.close(idx, Close::Protocol);
                continue;
            }
            match dirty.iter_mut().find(|(i, _)| *i == idx) {
                Some((_, frames)) => *frames += 1,
                None => dirty.push((idx, 1)),
            }
        }
        for (idx, frames) in dirty {
            if frames > 1 {
                self.shared
                    .conns
                    .coalesced_frames
                    .fetch_add(frames - 1, Ordering::Relaxed);
            }
            self.settle(idx);
        }
    }

    /// Flushes, applies the backpressure cap, closes a finished draining
    /// connection, and re-syncs poller interest.
    fn settle(&mut self, idx: usize) {
        let max_write = self.shared.cfg.max_write_buffer;
        let Some(conn) = self.slots[idx].as_mut() else {
            return;
        };
        let close = match conn.flush() {
            Err(_) => Some(Close::Peer),
            Ok(()) => {
                if conn.pending() > max_write {
                    Some(Close::Backpressure)
                } else if conn.draining && conn.inflight == 0 && conn.pending() == 0 {
                    Some(Close::Drained)
                } else {
                    None
                }
            }
        };
        match close {
            Some(why) => self.close(idx, why),
            None => self.sync_interest(idx),
        }
    }

    /// Registers exactly the interest the connection's state implies:
    /// readable unless draining, writable only while output is pending.
    fn sync_interest(&mut self, idx: usize) {
        let Self {
            slots,
            gens,
            poller,
            ..
        } = self;
        let Some(conn) = slots[idx].as_mut() else {
            return;
        };
        let desired = Interest {
            readable: !conn.draining,
            writable: conn.pending() > 0,
        };
        if desired != conn.interest {
            let fd = conn.reader.get_ref().as_raw_fd();
            if poller
                .modify(fd, token_for(idx, gens[idx]), desired)
                .is_ok()
            {
                conn.interest = desired;
            }
        }
    }

    fn close(&mut self, idx: usize, why: Close) {
        let Some(conn) = self.slots[idx].take() else {
            return;
        };
        let _ = self.poller.delete(conn.reader.get_ref().as_raw_fd());
        self.gens[idx] = self.gens[idx].wrapping_add(1);
        self.free.push(idx);
        let counters = &self.shared.conns;
        match why {
            Close::Peer => counters.closed_peer.fetch_add(1, Ordering::Relaxed),
            Close::Protocol => counters.closed_protocol.fetch_add(1, Ordering::Relaxed),
            Close::Backpressure => counters.closed_backpressure.fetch_add(1, Ordering::Relaxed),
            Close::Drained => counters.closed_drained.fetch_add(1, Ordering::Relaxed),
            Close::Idle => counters.closed_idle.fetch_add(1, Ordering::Relaxed),
        };
        // Dropping the conn closes the socket. Any in-flight jobs it still
        // has will complete, fail the generation check, and be discarded —
        // `inflight_total` is decremented when they are received, so drain
        // still accounts for them.
        drop(conn);
    }

    /// Enters drain mode: stop accepting, stop reading, flush and close.
    fn begin_drain(&mut self) {
        self.draining = true;
        let _ = self.poller.delete(self.listener.as_raw_fd());
        for idx in 0..self.slots.len() {
            if let Some(conn) = self.slots[idx].as_mut() {
                conn.draining = true;
            }
            self.sync_interest(idx);
        }
    }

    /// Sheds connections silent past [`idle_timeout`] — never one with
    /// requests in flight or undelivered output, and never during drain
    /// (drain has its own grace window).
    ///
    /// [`idle_timeout`]: crate::server::ServerConfig::idle_timeout
    fn sweep_idle(&mut self) {
        let Some(timeout) = self.shared.cfg.idle_timeout else {
            return;
        };
        for idx in 0..self.slots.len() {
            let idle = matches!(
                self.slots[idx].as_ref(),
                Some(c) if !c.draining
                    && c.inflight == 0
                    && c.pending() == 0
                    && c.last_activity.elapsed() >= timeout
            );
            if idle {
                self.close(idx, Close::Idle);
            }
        }
    }

    /// Closes every draining connection whose work is fully delivered.
    fn sweep_finished(&mut self) {
        for idx in 0..self.slots.len() {
            let done = matches!(
                self.slots[idx].as_ref(),
                Some(c) if c.draining && c.inflight == 0 && c.pending() == 0
            );
            if done {
                self.close(idx, Close::Drained);
            }
        }
    }
}
