//! Length-prefixed JSON-lines framing.
//!
//! A frame is an ASCII decimal payload length, a newline, the payload
//! bytes, and a trailing newline:
//!
//! ```text
//! <len>\n<payload…>\n
//! ```
//!
//! The payload is one JSON document on a single line (the encoder in
//! [`crate::json`] escapes every control character, so it never contains a
//! raw newline). The length prefix lets the receiver allocate exactly once
//! and reject oversized frames *before* buffering them; the trailing
//! newline is a cheap integrity check and keeps a captured stream readable
//! with line-oriented tools.
//!
//! [`FrameReader`] is incremental: it buffers partial input across calls,
//! so it works on blocking sockets, on sockets with a read timeout (the
//! threaded server polls its shutdown flag between timeouts), and on fully
//! nonblocking sockets driven by a readiness loop.
//!
//! The reader enforces a maximum payload length ([`MAX_FRAME_LEN`] by
//! default, configurable down via [`FrameReader::with_max_len`]). An
//! oversized declared length is rejected **at the header** — the payload is
//! never buffered — and the violation is *recoverable*: the reader skips
//! the declared bytes in bounded chunks and resumes at the next frame
//! boundary, so a server can answer with a typed `bad_frame` error instead
//! of dropping the connection.

use std::io::{self, Read, Write};

/// Hard upper bound on a frame payload; declared lengths above this are
/// rejected at the header, before any payload is buffered (16 MiB — far
/// above any legitimate request). Readers may lower the bound per
/// connection via [`FrameReader::with_max_len`], never raise it.
pub const MAX_FRAME_LEN: usize = 16 << 20;

/// Maximum digits in the length header (enough for [`MAX_FRAME_LEN`]).
const MAX_HEADER_DIGITS: usize = 9;

/// A framing violation. `Io` wraps transport errors; everything else means
/// the peer does not speak the protocol and the connection should close.
#[derive(Debug)]
pub enum FrameError {
    /// The length header was not a decimal number followed by `\n`.
    BadHeader,
    /// The declared length exceeds the reader's payload cap (the
    /// [`MAX_FRAME_LEN`] protocol bound, or a lower per-connection cap set
    /// with [`FrameReader::with_max_len`]). Recoverable: the reader skips
    /// the oversized payload and the next call resumes at the following
    /// frame boundary.
    TooLarge(usize),
    /// The byte after the payload was not `\n`.
    MissingTerminator,
    /// The stream ended in the middle of a frame.
    Truncated,
    /// The stream ended cleanly between frames.
    Closed,
    /// An underlying I/O error (not `WouldBlock`/`TimedOut` — those map to
    /// `Ok(None)` from [`FrameReader::next_frame`]).
    Io(io::Error),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::BadHeader => write!(f, "malformed frame header"),
            FrameError::TooLarge(n) => {
                write!(
                    f,
                    "declared frame length of {n} bytes exceeds the reader's cap"
                )
            }
            FrameError::MissingTerminator => write!(f, "frame payload not newline-terminated"),
            FrameError::Truncated => write!(f, "stream ended mid-frame"),
            FrameError::Closed => write!(f, "stream closed"),
            FrameError::Io(e) => write!(f, "frame I/O error: {e}"),
        }
    }
}

impl std::error::Error for FrameError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FrameError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// Writes one frame (header, payload, terminator) and flushes.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "frame payload exceeds MAX_FRAME_LEN",
        ));
    }
    let mut buf = Vec::with_capacity(payload.len() + 16);
    buf.extend_from_slice(payload.len().to_string().as_bytes());
    buf.push(b'\n');
    buf.extend_from_slice(payload);
    buf.push(b'\n');
    w.write_all(&buf)?;
    w.flush()
}

/// Incremental frame decoder over any [`Read`].
///
/// `next_frame` returns `Ok(Some(payload))` when a complete frame is
/// buffered, `Ok(None)` when the underlying reader reported
/// `WouldBlock`/`TimedOut`/`Interrupted` before one arrived (poll again),
/// and `Err` on protocol violations, transport errors, or end of stream
/// ([`FrameError::Closed`] if the stream ended exactly between frames).
#[derive(Debug)]
pub struct FrameReader<R> {
    inner: R,
    buf: Vec<u8>,
    /// Bytes of `buf` already consumed by returned frames.
    consumed: usize,
    /// Per-reader payload cap (≤ [`MAX_FRAME_LEN`]).
    max_len: usize,
    /// Bytes of an oversized frame still to discard before the next
    /// header. Skipped data is consumed from `buf` as it arrives and never
    /// accumulates — the memory bound is the read chunk size, not the
    /// declared length.
    skip: usize,
}

impl<R: Read> FrameReader<R> {
    /// Wraps a reader with the default [`MAX_FRAME_LEN`] payload cap.
    pub fn new(inner: R) -> Self {
        Self::with_max_len(inner, MAX_FRAME_LEN)
    }

    /// Wraps a reader with a per-connection payload cap. Caps above
    /// [`MAX_FRAME_LEN`] are clamped to it (the header digit budget is
    /// sized for the protocol-wide bound).
    pub fn with_max_len(inner: R, max_len: usize) -> Self {
        Self {
            inner,
            buf: Vec::with_capacity(1024),
            consumed: 0,
            max_len: max_len.min(MAX_FRAME_LEN),
            skip: 0,
        }
    }

    /// The underlying reader (e.g. to reach socket metadata or, for
    /// `&TcpStream`-style readers, the write half).
    pub fn get_ref(&self) -> &R {
        &self.inner
    }

    /// Mutable access to the underlying reader.
    pub fn get_mut(&mut self) -> &mut R {
        &mut self.inner
    }

    /// Tries to decode one frame, reading more input as needed.
    pub fn next_frame(&mut self) -> Result<Vec<u8>, FrameError> {
        loop {
            if let Some(frame) = self.try_decode()? {
                return Ok(frame);
            }
            let mut chunk = [0u8; 4096];
            match self.inner.read(&mut chunk) {
                Ok(0) => {
                    // An unfinished oversized-frame skip is still "mid-
                    // frame" even though the buffer itself is drained.
                    return Err(if self.buf.len() == self.consumed && self.skip == 0 {
                        FrameError::Closed
                    } else {
                        FrameError::Truncated
                    });
                }
                Ok(n) => {
                    // Drop consumed bytes before growing the buffer.
                    if self.consumed > 0 {
                        self.buf.drain(..self.consumed);
                        self.consumed = 0;
                    }
                    self.buf.extend_from_slice(&chunk[..n]);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(FrameError::Io(e)),
            }
        }
    }

    /// Like [`next_frame`](Self::next_frame) but maps `WouldBlock` /
    /// `TimedOut` to `Ok(None)` — the polling variant the server uses to
    /// check its shutdown flag between reads.
    pub fn poll_frame(&mut self) -> Result<Option<Vec<u8>>, FrameError> {
        match self.next_frame() {
            Ok(frame) => Ok(Some(frame)),
            Err(FrameError::Io(e))
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                Ok(None)
            }
            Err(e) => Err(e),
        }
    }

    /// Attempts to decode a frame from the buffered bytes alone.
    fn try_decode(&mut self) -> Result<Option<Vec<u8>>, FrameError> {
        // Discard the remainder of a rejected oversized frame first.
        if self.skip > 0 {
            let avail = self.buf.len() - self.consumed;
            let n = avail.min(self.skip);
            self.consumed += n;
            self.skip -= n;
            if self.skip > 0 {
                return Ok(None); // need more bytes just to discard
            }
        }
        let avail = &self.buf[self.consumed..];
        let Some(nl) = avail
            .iter()
            .take(MAX_HEADER_DIGITS + 1)
            .position(|&b| b == b'\n')
        else {
            // No header newline yet: fine while short, protocol error once
            // more bytes than any valid header arrived.
            if avail.len() > MAX_HEADER_DIGITS {
                return Err(FrameError::BadHeader);
            }
            return Ok(None);
        };
        let header = &avail[..nl];
        if header.is_empty() || !header.iter().all(u8::is_ascii_digit) {
            return Err(FrameError::BadHeader);
        }
        let len: usize = std::str::from_utf8(header)
            .unwrap()
            .parse()
            .map_err(|_| FrameError::BadHeader)?;
        if len > self.max_len {
            // Recoverable: consume the header now, arrange to discard the
            // declared payload (+ terminator) without ever buffering it,
            // and report the violation once. The next call resumes at the
            // following frame boundary.
            self.consumed += nl + 1;
            self.skip = len + 1;
            return Err(FrameError::TooLarge(len));
        }
        let body_start = nl + 1;
        let frame_end = body_start + len + 1; // payload + trailing '\n'
        if avail.len() < frame_end {
            return Ok(None);
        }
        if avail[frame_end - 1] != b'\n' {
            return Err(FrameError::MissingTerminator);
        }
        let payload = avail[body_start..frame_end - 1].to_vec();
        self.consumed += frame_end;
        Ok(Some(payload))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn framed(payloads: &[&str]) -> Vec<u8> {
        let mut out = Vec::new();
        for p in payloads {
            write_frame(&mut out, p.as_bytes()).unwrap();
        }
        out
    }

    #[test]
    fn roundtrip_multiple_frames() {
        let wire = framed(&["{\"a\":1}", "", "second"]);
        let mut r = FrameReader::new(Cursor::new(wire));
        assert_eq!(r.next_frame().unwrap(), b"{\"a\":1}");
        assert_eq!(r.next_frame().unwrap(), b"");
        assert_eq!(r.next_frame().unwrap(), b"second");
        assert!(matches!(r.next_frame(), Err(FrameError::Closed)));
    }

    #[test]
    fn split_delivery_reassembles() {
        // A reader that returns one byte at a time.
        struct OneByte(Cursor<Vec<u8>>);
        impl Read for OneByte {
            fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
                let take = 1.min(buf.len());
                self.0.read(&mut buf[..take])
            }
        }
        let wire = framed(&["hello world"]);
        let mut r = FrameReader::new(OneByte(Cursor::new(wire)));
        assert_eq!(r.next_frame().unwrap(), b"hello world");
    }

    #[test]
    fn rejects_garbage_header() {
        let mut r = FrameReader::new(Cursor::new(b"not a frame\n".to_vec()));
        assert!(matches!(r.next_frame(), Err(FrameError::BadHeader)));
        // A headerless flood with no newline is caught at the digit cap.
        let mut r = FrameReader::new(Cursor::new(vec![b'x'; 64]));
        assert!(matches!(r.next_frame(), Err(FrameError::BadHeader)));
    }

    #[test]
    fn rejects_oversized_and_truncated() {
        let mut r = FrameReader::new(Cursor::new(b"999999999\n".to_vec()));
        assert!(matches!(r.next_frame(), Err(FrameError::TooLarge(_))));
        let mut r = FrameReader::new(Cursor::new(b"10\nshort".to_vec()));
        assert!(matches!(r.next_frame(), Err(FrameError::Truncated)));
        let mut r = FrameReader::new(Cursor::new(b"2\nabX".to_vec()));
        assert!(matches!(r.next_frame(), Err(FrameError::MissingTerminator)));
    }

    #[test]
    fn oversized_frame_is_skipped_and_the_stream_recovers() {
        // frame, oversized frame, frame: the middle rejection must not
        // desynchronize the reader.
        let mut wire = Vec::new();
        write_frame(&mut wire, b"before").unwrap();
        write_frame(&mut wire, &vec![b'x'; 100]).unwrap(); // over the 64-byte cap below
        write_frame(&mut wire, b"after").unwrap();
        let mut r = FrameReader::with_max_len(Cursor::new(wire), 64);
        assert_eq!(r.next_frame().unwrap(), b"before");
        assert!(matches!(r.next_frame(), Err(FrameError::TooLarge(100))));
        assert_eq!(r.next_frame().unwrap(), b"after");
        assert!(matches!(r.next_frame(), Err(FrameError::Closed)));
    }

    #[test]
    fn oversized_skip_never_buffers_the_payload() {
        // One byte at a time through a tiny cap: the buffer stays bounded
        // by the chunk size even while discarding a "large" payload.
        struct OneByte(Cursor<Vec<u8>>);
        impl Read for OneByte {
            fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
                let take = 1.min(buf.len());
                self.0.read(&mut buf[..take])
            }
        }
        let mut wire = Vec::new();
        write_frame(&mut wire, &vec![b'y'; 5000]).unwrap();
        write_frame(&mut wire, b"ok").unwrap();
        let mut r = FrameReader::with_max_len(OneByte(Cursor::new(wire)), 16);
        assert!(matches!(r.next_frame(), Err(FrameError::TooLarge(5000))));
        assert_eq!(r.next_frame().unwrap(), b"ok");
        assert!(
            r.buf.capacity() < 4096,
            "skipped payload was never buffered"
        );
    }

    #[test]
    fn truncation_inside_a_skipped_frame_is_truncated() {
        let mut wire = Vec::new();
        write_frame(&mut wire, &vec![b'z'; 100]).unwrap();
        wire.truncate(wire.len() - 40); // stream dies mid-skip
        let mut r = FrameReader::with_max_len(Cursor::new(wire), 8);
        assert!(matches!(r.next_frame(), Err(FrameError::TooLarge(100))));
        assert!(matches!(r.next_frame(), Err(FrameError::Truncated)));
    }

    #[test]
    fn max_len_is_clamped_to_the_protocol_bound() {
        let r = FrameReader::with_max_len(Cursor::new(Vec::new()), usize::MAX);
        assert_eq!(r.max_len, MAX_FRAME_LEN);
    }

    #[test]
    fn payload_may_contain_newlines() {
        // Framing is length-driven: a payload with raw newlines still
        // decodes (the JSON layer never emits them, but the frame layer
        // must not care).
        let mut wire = Vec::new();
        write_frame(&mut wire, b"a\nb\nc").unwrap();
        let mut r = FrameReader::new(Cursor::new(wire));
        assert_eq!(r.next_frame().unwrap(), b"a\nb\nc");
    }
}
