//! A minimal JSON value type with encoder and parser.
//!
//! The wire protocol (see [`crate::proto`]) needs full JSON *parsing*, which
//! nothing in the workspace provided before — `ic-obs` and `ic-bench` only
//! ever serialize. Implemented locally because `serde_json` is not part of
//! the sanctioned offline dependency set; the subset needed here (no
//! arbitrary-precision numbers, objects as ordered pair lists) is small.
//!
//! Numbers are `f64`. Rust's `{}` formatting emits the shortest string that
//! round-trips the exact bit pattern, so encode→decode is the identity on
//! every finite value — the property the wire-format tests pin. Non-finite
//! numbers are not representable in JSON and encode as `null`.

use std::fmt;

/// A JSON value. Object member order is preserved (pair list, not a map);
/// duplicate keys are kept by the parser and `get` returns the first.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (always an `f64`; integers up to 2^53 are exact).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object as an ordered list of `(key, value)` members.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from members.
    pub fn obj(members: Vec<(&str, Json)>) -> Json {
        Json::Obj(
            members
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Looks up a member of an object (first match); `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as an exact unsigned integer: `None` unless the
    /// number is a non-negative integer below 2^53 (exactly representable).
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        if n >= 0.0 && n <= 9_007_199_254_740_992.0 && n.fract() == 0.0 {
            Some(n as u64)
        } else {
            None
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes to compact JSON (no whitespace, one line: every control
    /// character inside strings is escaped, so the output never contains a
    /// raw newline — the invariant the framing layer relies on).
    pub fn encode(&self) -> String {
        let mut out = String::with_capacity(64);
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => {
                if n.is_finite() {
                    // `{}` on f64 is the shortest round-trip representation.
                    out.push_str(&format!("{n}"));
                    // Integral values print without a dot ("1"), which is
                    // valid JSON and parses back to the same f64.
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            // Non-ASCII passes through as UTF-8.
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure, with the byte offset where it was detected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input.
    pub at: usize,
    /// What went wrong.
    pub reason: &'static str,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.reason)
    }
}

impl std::error::Error for ParseError {}

/// Parses one JSON value; trailing non-whitespace input is an error.
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data after value"));
    }
    Ok(v)
}

/// Nesting depth cap: malicious `[[[[…` input must not blow the stack.
const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, reason: &'static str) -> ParseError {
        ParseError {
            at: self.pos,
            reason,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8, reason: &'static str) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(reason))
        }
    }

    fn eat_lit(&mut self, lit: &str, v: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.eat_lit("null", Json::Null),
            Some(b't') => self.eat_lit("true", Json::Bool(true)),
            Some(b'f') => self.eat_lit("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, ParseError> {
        self.eat(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, ParseError> {
        self.eat(b'{', "expected '{'")?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected ':'")?;
            self.skip_ws();
            let v = self.value(depth + 1)?;
            members.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // High surrogate: a \uXXXX low surrogate
                                // must follow.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.eat(b'u', "expected low surrogate")?;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(cp)
                                        .ok_or_else(|| self.err("invalid surrogate pair"))?
                                } else {
                                    return Err(self.err("unpaired high surrogate"));
                                }
                            } else if (0xDC00..0xE000).contains(&hi) {
                                return Err(self.err("unpaired low surrogate"));
                            } else {
                                char::from_u32(hi).ok_or_else(|| self.err("invalid codepoint"))?
                            };
                            out.push(c);
                            // hex4 leaves pos past the last hex digit;
                            // counteract the shared += 1 below.
                            self.pos -= 1;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Consume one UTF-8 encoded char (input is &str, so
                    // boundaries are trustworthy).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("non-ASCII in \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits_start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.pos == digits_start {
            return Err(self.err("expected digits"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            let frac_start = self.pos;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
            if self.pos == frac_start {
                return Err(self.err("expected fraction digits"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let exp_start = self.pos;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
            if self.pos == exp_start {
                return Err(self.err("expected exponent digits"));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        let n: f64 = text.parse().map_err(|_| self.err("number out of range"))?;
        Ok(Json::Num(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: &Json) {
        let text = v.encode();
        let back = parse(&text).unwrap_or_else(|e| panic!("parse {text:?}: {e}"));
        assert_eq!(&back, v, "roundtrip of {text}");
    }

    #[test]
    fn scalars_roundtrip() {
        for v in [
            Json::Null,
            Json::Bool(true),
            Json::Bool(false),
            Json::Num(0.0),
            Json::Num(-1.5),
            Json::Num(1e300),
            Json::Num(0.1 + 0.2), // not representable in short decimal
            Json::Str(String::new()),
            Json::Str("héllo wörld — ключ 键".to_string()),
            Json::Str("line1\nline2\t\"quoted\"\\slash\u{1}".to_string()),
        ] {
            roundtrip(&v);
        }
    }

    #[test]
    fn containers_roundtrip() {
        let v = Json::obj(vec![
            ("id", Json::Num(7.0)),
            ("kind", Json::Str("compare".into())),
            (
                "names",
                Json::Arr(vec![Json::Str("a\nb".into()), Json::Null]),
            ),
            ("nested", Json::obj(vec![("x", Json::Bool(false))])),
        ]);
        roundtrip(&v);
        assert_eq!(v.get("id").and_then(Json::as_u64), Some(7));
        assert_eq!(v.get("kind").and_then(Json::as_str), Some("compare"));
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let v = parse(" { \"a\" : [ 1 , 2.5e1 , \"\\u00e9\\ud83d\\ude00\" ] } ").unwrap();
        let arr = v.get("a").and_then(Json::as_arr).unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].as_f64(), Some(25.0));
        assert_eq!(arr[2].as_str(), Some("é😀"));
    }

    #[test]
    fn rejects_malformed() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "\"unterminated",
            "nul",
            "1 2",
            "{\"a\":1,}",
            "\"\\ud800\"", // unpaired high surrogate
            "\"\\udc00\"", // unpaired low surrogate
            "\"raw\ncontrol\"",
            "--1",
            "1.",
            "1e",
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn depth_is_bounded() {
        let deep = "[".repeat(1000) + &"]".repeat(1000);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn non_finite_encodes_as_null() {
        assert_eq!(Json::Num(f64::NAN).encode(), "null");
        assert_eq!(Json::Num(f64::INFINITY).encode(), "null");
    }

    #[test]
    fn as_u64_bounds() {
        assert_eq!(Json::Num(-1.0).as_u64(), None);
        assert_eq!(Json::Num(1.5).as_u64(), None);
        assert_eq!(Json::Num(9_007_199_254_740_992.0).as_u64(), Some(1 << 53));
        assert_eq!(Json::Num(1e300).as_u64(), None);
    }
}
