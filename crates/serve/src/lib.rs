//! # ic-serve — an embeddable similarity service
//!
//! Load instances once, answer many comparison requests over time: a
//! dependency-free request-serving layer over the [`ic_core::Comparator`],
//! for update-and-recompare workloads where callers should not have to
//! link the workspace and hold both instances in one process.
//!
//! Three layers:
//!
//! * [`catalog`] — a registry of named, schema-aligned instances loaded
//!   from CSV directories or registered programmatically, with
//!   copy-on-write snapshot replacement: in-flight requests never observe
//!   a torn update. Every mutation is one [`ic_store::CatalogOp`] applied
//!   through [`ServeCatalog::apply`]; opened with a [`ic_store::Storage`]
//!   backend the catalog is durable — ops are write-ahead logged and
//!   recovered (snapshot + WAL replay) on reopen.
//! * [`proto`] + [`frame`] + [`json`] — a length-prefixed JSON-lines wire
//!   format (hand-rolled encoder/decoder, no serde) with request kinds
//!   `load`, `list`, `compare`, `search`, `patch`, `stats`, `shutdown`,
//!   request ids echoed in responses, and typed error payloads mapped from
//!   [`ic_core::Error`].
//! * [`server`] — the serving runtime: a bounded request queue feeding
//!   [`ic_pool`] workers, admission control (queue-full returns
//!   `overloaded` instead of blocking), per-request deadlines, per-request
//!   [`ic_obs`] spans exported through `stats`, and graceful
//!   drain-then-close shutdown. Connections are driven either by a
//!   readiness-based epoll event loop ([`server::Runtime::EventLoop`], the
//!   Linux default — bounded threads and memory at tens of thousands of
//!   connections, pipelined requests with out-of-order completion) or by
//!   the portable thread-per-connection fallback
//!   ([`server::Runtime::Threaded`]). Both runtimes speak the identical
//!   contract: bit-identical scores, the same typed errors, the same
//!   shutdown semantics.
//! * [`sigcache`] — a signature-map cache keyed by instance pointer
//!   identity: hot catalog instances pay the sigmap build once, a `load`
//!   that replaces an instance invalidates its entry automatically
//!   (copy-on-write snapshots make staleness a pointer comparison), and a
//!   catalog-subscription sweep evicts entries for removed instances so
//!   nothing stays pinned forever.
//!
//! `search` requests run through an [`ic_index::CatalogIndex`] kept in
//! sync with the catalog: sketch + signature-overlap prefiltering chooses
//! which entries get a full comparison, and every returned score is
//! bit-identical to an unbudgeted `compare` of the same pair.
//!
//! All serve-layer locks are poison-tolerant: a panic inside one request
//! (engine bug, panicking observation sink) is answered with a typed
//! `internal` error and subsequent requests proceed normally.
//!
//! [`client`] is a small blocking client over the same protocol.
//!
//! ## In-process quickstart
//!
//! ```
//! use ic_serve::{Client, CompareOptions, Algo, Server, ServerConfig, ServeCatalog};
//! use ic_model::{Instance, Schema};
//! use std::sync::Arc;
//!
//! let catalog = Arc::new(ServeCatalog::new(Schema::single("R", &["A", "B"])));
//! for name in ["v1", "v2"] {
//!     catalog.register_with(name, |cat| {
//!         let mut inst = Instance::new(name, cat);
//!         let (a, b) = (cat.konst("a"), cat.konst("b"));
//!         let n = cat.fresh_null();
//!         inst.insert(ic_model::RelId(0), vec![a, if name == "v1" { b } else { n }]);
//!         Ok(inst)
//!     }).unwrap();
//! }
//!
//! let server = Server::start(catalog, "127.0.0.1:0", ServerConfig::default()).unwrap();
//! let mut client = Client::new(server.local_addr()).unwrap();
//! let scores = client
//!     .compare("v1", "v2", Algo::Signature, CompareOptions::default())
//!     .unwrap();
//! assert!(scores.signature.unwrap() > 0.0);
//! client.shutdown().unwrap();
//! server.wait();
//! ```
//!
//! The standalone binary (`cargo run -p ic-serve --bin serve`) exposes the
//! same server over a fixed port; see the README quickstart.

#![warn(missing_docs)]

pub mod catalog;
pub mod client;
#[cfg(target_os = "linux")]
mod conn;
pub mod frame;
pub mod json;
mod lockutil;
#[cfg(target_os = "linux")]
pub mod poll;
pub mod proto;
pub mod server;
pub mod sigcache;

pub use catalog::{ApplyOutcome, CatalogError, ServeCatalog, Snapshot};
pub use client::{
    Client, ClientBuilder, ClientError, CompareOptions, DiscoverOptions, DiscoveryResults,
};
pub use frame::{FrameError, FrameReader, MAX_FRAME_LEN};
pub use json::Json;
pub use proto::{
    Algo, AttrRef, CompareScores, DiscoveredFdInfo, DiscoveredKeyInfo, ErrorCode, InstanceInfo,
    PatchOp, PatchValue, Request, Response, SearchResult, SearchResults, ServerStats, SpanStat,
};
pub use server::{
    ConnStats, Runtime, Server, ServerConfig, ServerHandle, COMPARE_LABEL, DISCOVER_LABEL,
    SEARCH_LABEL,
};
pub use sigcache::{SigCacheStats, SigMapCache};
