//! Poison-tolerant locking for the serve layer.
//!
//! Every mutex in ic-serve guards state that is consistent at all times:
//! catalog snapshots are swapped as whole `Arc`s, cache entries are
//! inserted/removed whole, queue senders are cloned or taken whole. A
//! panic while holding such a lock therefore cannot leave torn state —
//! which makes `std`'s poisoning pure downside here: one panicking worker
//! would turn every subsequent `.lock().unwrap()` into a panic and take
//! the whole server down instead of degrading to a typed error.
//!
//! [`lock_recover`] recovers the guard from a poisoned mutex and is the
//! only way serve code takes a lock.

use std::sync::{Mutex, MutexGuard};

/// Acquires `m`, recovering the guard if a previous holder panicked.
pub(crate) fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::Mutex;

    #[test]
    fn recovers_after_holder_panics() {
        let m = Mutex::new(vec![1, 2, 3]);
        let _ = catch_unwind(AssertUnwindSafe(|| {
            let _guard = m.lock().unwrap();
            panic!("holder dies");
        }));
        assert!(m.is_poisoned());
        assert_eq!(lock_recover(&m).len(), 3);
        lock_recover(&m).push(4);
        assert_eq!(lock_recover(&m).len(), 4);
    }
}
