//! A minimal, dependency-free readiness API over Linux `epoll`.
//!
//! The workspace is offline, so this talks to the kernel through direct
//! `extern "C"` declarations of the epoll/eventfd entry points (they live
//! in the C runtime `std` already links — no `libc` crate involved) and
//! owns every descriptor through [`std::os::fd::OwnedFd`].
//!
//! Three pieces:
//!
//! * [`Poller`] — an epoll instance: `add`/`modify`/`delete` register
//!   interest in a descriptor under a caller-chosen `u64` token, and
//!   [`Poller::wait`] blocks (with a timeout) for readiness [`Event`]s.
//!   Registration is **level-triggered**: an event keeps firing while the
//!   condition holds, so a handler that drains partially is never stranded.
//! * [`Interest`] — which readiness directions to watch.
//! * [`WakeFd`] — an `eventfd`-backed wakeup handle other threads use to
//!   interrupt a blocked [`Poller::wait`] (worker completions, shutdown).
//!
//! This module is Linux-only; the serve runtime keeps the portable
//! thread-per-connection model as a fallback (see
//! [`crate::server::Runtime`]).

use std::io;
use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};

// Readiness bits (stable Linux UAPI values).
const EPOLLIN: u32 = 0x001;
const EPOLLOUT: u32 = 0x004;
const EPOLLERR: u32 = 0x008;
const EPOLLHUP: u32 = 0x010;
const EPOLLRDHUP: u32 = 0x2000;

// epoll_ctl ops.
const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;

const EPOLL_CLOEXEC: i32 = 0o2000000;
const EFD_CLOEXEC: i32 = 0o2000000;
const EFD_NONBLOCK: i32 = 0o4000;

/// The kernel's `struct epoll_event`. Packed on x86-64 (the kernel ABI
/// genuinely differs there), naturally aligned elsewhere.
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
    fn eventfd(initval: u32, flags: i32) -> i32;
    fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
    fn write(fd: i32, buf: *const u8, count: usize) -> isize;
}

fn cvt(ret: i32) -> io::Result<i32> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// Token reserved for the listening socket (connection tokens are
/// `generation << 32 | slot` and never reach this range in practice).
pub const TOKEN_LISTENER: u64 = u64::MAX;

/// Token reserved for the wakeup eventfd.
pub const TOKEN_WAKE: u64 = u64::MAX - 1;

/// Which readiness directions a registration watches. Peer hangups and
/// errors are always reported regardless of interest (kernel semantics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Fire when the descriptor is readable (or the peer half-closed).
    pub readable: bool,
    /// Fire when the descriptor is writable.
    pub writable: bool,
}

impl Interest {
    /// Readable only.
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Readable and writable.
    pub const READ_WRITE: Interest = Interest {
        readable: true,
        writable: true,
    };
    /// Writable only (a draining connection that no longer reads).
    pub const WRITE: Interest = Interest {
        readable: false,
        writable: true,
    };

    fn bits(self) -> u32 {
        let mut bits = EPOLLRDHUP;
        if self.readable {
            bits |= EPOLLIN;
        }
        if self.writable {
            bits |= EPOLLOUT;
        }
        bits
    }
}

/// One readiness notification out of [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the descriptor was registered under.
    pub token: u64,
    /// Readable (includes peer half-close — a read will not block).
    pub readable: bool,
    /// Writable.
    pub writable: bool,
    /// Error or hangup: the connection is unusable regardless of the
    /// other flags.
    pub failed: bool,
}

/// An owned epoll instance.
pub struct Poller {
    epfd: OwnedFd,
    /// Reused kernel-events buffer for [`wait`](Self::wait).
    buf: Vec<EpollEvent>,
}

impl Poller {
    /// Creates an epoll instance (close-on-exec).
    pub fn new() -> io::Result<Self> {
        let fd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
        Ok(Self {
            // SAFETY: epoll_create1 returned a fresh descriptor we own.
            epfd: unsafe { OwnedFd::from_raw_fd(fd) },
            buf: vec![EpollEvent { events: 0, data: 0 }; 256],
        })
    }

    fn ctl(&self, op: i32, fd: RawFd, mut ev: Option<EpollEvent>) -> io::Result<()> {
        let ptr = ev
            .as_mut()
            .map(|e| e as *mut EpollEvent)
            .unwrap_or(std::ptr::null_mut());
        cvt(unsafe { epoll_ctl(self.epfd.as_raw_fd(), op, fd, ptr) }).map(drop)
    }

    /// Registers `fd` under `token` with the given interest.
    pub fn add(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(
            EPOLL_CTL_ADD,
            fd,
            Some(EpollEvent {
                events: interest.bits(),
                data: token,
            }),
        )
    }

    /// Changes the interest (and token) of an already-registered `fd`.
    pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(
            EPOLL_CTL_MOD,
            fd,
            Some(EpollEvent {
                events: interest.bits(),
                data: token,
            }),
        )
    }

    /// Removes `fd` from the instance. (Closing the descriptor does this
    /// implicitly; explicit removal keeps slot reuse race-free.)
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, None)
    }

    /// Blocks until readiness or `timeout_ms` (`-1` = forever, `0` = poll)
    /// and appends decoded events to `out`. Returns how many fired.
    /// `EINTR` is reported as zero events, not an error.
    pub fn wait(&mut self, out: &mut Vec<Event>, timeout_ms: i32) -> io::Result<usize> {
        let n = unsafe {
            epoll_wait(
                self.epfd.as_raw_fd(),
                self.buf.as_mut_ptr(),
                self.buf.len() as i32,
                timeout_ms,
            )
        };
        if n < 0 {
            let err = io::Error::last_os_error();
            return if err.kind() == io::ErrorKind::Interrupted {
                Ok(0)
            } else {
                Err(err)
            };
        }
        let n = n as usize;
        for ev in &self.buf[..n] {
            let bits = ev.events;
            out.push(Event {
                token: ev.data,
                readable: bits & (EPOLLIN | EPOLLRDHUP) != 0,
                writable: bits & EPOLLOUT != 0,
                failed: bits & (EPOLLERR | EPOLLHUP) != 0,
            });
        }
        Ok(n)
    }
}

/// A cross-thread wakeup handle: an `eventfd` registered with the poller.
/// [`wake`](Self::wake) is async-signal-safe-cheap (one 8-byte write) and
/// coalesces — many wakes before a drain still cost one readiness event.
#[derive(Debug)]
pub struct WakeFd {
    fd: OwnedFd,
}

impl WakeFd {
    /// Creates a nonblocking eventfd.
    pub fn new() -> io::Result<Self> {
        let fd = cvt(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) })?;
        Ok(Self {
            // SAFETY: eventfd returned a fresh descriptor we own.
            fd: unsafe { OwnedFd::from_raw_fd(fd) },
        })
    }

    /// The descriptor to register with a [`Poller`] (read interest).
    pub fn as_raw_fd(&self) -> RawFd {
        self.fd.as_raw_fd()
    }

    /// Signals the poller. Never blocks: if the counter is saturated the
    /// wakeup is already pending.
    pub fn wake(&self) {
        let one: u64 = 1;
        // EAGAIN (counter full) means a wake is already pending — fine.
        unsafe { write(self.fd.as_raw_fd(), &one as *const u64 as *const u8, 8) };
    }

    /// Clears pending wakeups so level-triggered polling stops firing.
    pub fn drain(&self) {
        let mut buf = [0u8; 8];
        unsafe { read(self.fd.as_raw_fd(), buf.as_mut_ptr(), 8) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;
    use std::net::{TcpListener, TcpStream};
    use std::time::{Duration, Instant};

    #[test]
    fn wake_interrupts_a_blocked_wait() {
        let mut poller = Poller::new().unwrap();
        let wake = std::sync::Arc::new(WakeFd::new().unwrap());
        poller.add(wake.as_raw_fd(), 7, Interest::READ).unwrap();

        let waker = std::sync::Arc::clone(&wake);
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            waker.wake();
            waker.wake(); // coalesces
        });

        let start = Instant::now();
        let mut events = Vec::new();
        let n = poller.wait(&mut events, 5_000).unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable);
        assert!(
            start.elapsed() < Duration::from_secs(4),
            "woken, not timed out"
        );
        t.join().unwrap();

        // Drained, the level-triggered event stops firing.
        wake.drain();
        events.clear();
        assert_eq!(poller.wait(&mut events, 0).unwrap(), 0);
    }

    #[test]
    fn socket_readability_and_interest_changes() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let mut poller = Poller::new().unwrap();
        poller.add(server.as_raw_fd(), 42, Interest::READ).unwrap();

        // Nothing readable yet.
        let mut events = Vec::new();
        assert_eq!(poller.wait(&mut events, 0).unwrap(), 0);

        client.write_all(b"ping").unwrap();
        events.clear();
        assert_eq!(poller.wait(&mut events, 2_000).unwrap(), 1);
        assert!(events[0].readable && events[0].token == 42);

        // Write interest on an idle socket fires immediately (buffer empty).
        poller
            .modify(server.as_raw_fd(), 43, Interest::READ_WRITE)
            .unwrap();
        events.clear();
        assert_eq!(poller.wait(&mut events, 2_000).unwrap(), 1);
        assert!(events[0].writable && events[0].token == 43);

        // Peer close reports readable (EOF) on a read-interest socket.
        poller
            .modify(server.as_raw_fd(), 44, Interest::READ)
            .unwrap();
        drop(client);
        events.clear();
        assert_eq!(poller.wait(&mut events, 2_000).unwrap(), 1);
        assert!(events[0].readable);

        poller.delete(server.as_raw_fd()).unwrap();
    }
}
