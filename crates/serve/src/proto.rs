//! Typed wire protocol: request/response payloads and their JSON mapping.
//!
//! Every request carries a client-chosen `id`, echoed verbatim in the
//! response so clients can correlate replies (the server may interleave
//! responses from different connections, never within one). Encoding is
//! total; decoding distinguishes *syntax* errors (not JSON — the peer is
//! broken, close the connection) from *shape* errors (valid JSON that is
//! not a known message — answer `bad_request` and keep the connection).
//!
//! The mapping is pinned by an `ic-testkit` property: `decode(encode(m)) ==
//! m` for random messages including strings with newlines, quotes, and
//! non-ASCII (see `tests/wire_props.rs`).

use crate::json::{self, Json};
use std::fmt;

/// Which algorithm a `compare` request runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algo {
    /// The PTIME signature algorithm (default).
    Signature,
    /// The exact branch-and-bound.
    Exact,
    /// Both, for (exact, signature) gap reporting.
    Both,
}

impl Algo {
    fn as_str(self) -> &'static str {
        match self {
            Algo::Signature => "signature",
            Algo::Exact => "exact",
            Algo::Both => "both",
        }
    }

    fn parse(s: &str) -> Option<Self> {
        match s {
            "signature" => Some(Algo::Signature),
            "exact" => Some(Algo::Exact),
            "both" => Some(Algo::Both),
            _ => None,
        }
    }
}

/// A value carried by a patch op, resolved against the catalog's value
/// domains server-side.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PatchValue {
    /// A constant, interned on arrival (`"x"` on the wire).
    Const(String),
    /// A fresh labeled null, drawn server-side (`null` on the wire).
    FreshNull,
    /// An existing labeled null by id (`{"null": n}` on the wire) — for
    /// edits that must co-reference a null already in the instance.
    Null(u32),
}

impl PatchValue {
    fn to_json(&self) -> Json {
        match self {
            PatchValue::Const(s) => Json::Str(s.clone()),
            PatchValue::FreshNull => Json::Null,
            PatchValue::Null(n) => Json::obj(vec![("null", Json::Num(*n as f64))]),
        }
    }

    fn from_json(v: &Json) -> Result<Self, DecodeError> {
        match v {
            Json::Str(s) => Ok(PatchValue::Const(s.clone())),
            Json::Null => Ok(PatchValue::FreshNull),
            obj @ Json::Obj(_) => Ok(PatchValue::Null(
                obj.get("null")
                    .and_then(Json::as_u64)
                    .and_then(|n| u32::try_from(n).ok())
                    .ok_or(DecodeError::Shape("null reference not a u32"))?,
            )),
            _ => Err(DecodeError::Shape(
                "patch value must be string, null, or {\"null\":n}",
            )),
        }
    }
}

/// How a patch `modify` names the attribute: by position or by the
/// schema's attribute name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AttrRef {
    /// Zero-based attribute position.
    Index(u16),
    /// Attribute name, resolved against the tuple's relation schema.
    Name(String),
}

impl AttrRef {
    fn to_json(&self) -> Json {
        match self {
            AttrRef::Index(i) => Json::Num(*i as f64),
            AttrRef::Name(n) => Json::Str(n.clone()),
        }
    }

    fn from_json(v: &Json) -> Result<Self, DecodeError> {
        match v {
            Json::Str(s) => Ok(AttrRef::Name(s.clone())),
            n @ Json::Num(_) => Ok(AttrRef::Index(
                n.as_u64()
                    .and_then(|i| u16::try_from(i).ok())
                    .ok_or(DecodeError::Shape("attr index not a u16"))?,
            )),
            _ => Err(DecodeError::Shape("attr must be a name or an index")),
        }
    }
}

/// One edit in a `patch` request, in instance-delta vocabulary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PatchOp {
    /// Insert a tuple into the named relation.
    Insert {
        /// Relation name (schema-resolved server-side).
        rel: String,
        /// One value per attribute.
        values: Vec<PatchValue>,
    },
    /// Delete a tuple by id.
    Delete {
        /// The tuple id.
        tuple: u32,
    },
    /// Overwrite one attribute of a tuple.
    Modify {
        /// The tuple id.
        tuple: u32,
        /// Which attribute.
        attr: AttrRef,
        /// The new value.
        value: PatchValue,
    },
}

impl PatchOp {
    fn to_json(&self) -> Json {
        match self {
            PatchOp::Insert { rel, values } => Json::obj(vec![
                ("op", Json::Str("insert".into())),
                ("rel", Json::Str(rel.clone())),
                (
                    "values",
                    Json::Arr(values.iter().map(PatchValue::to_json).collect()),
                ),
            ]),
            PatchOp::Delete { tuple } => Json::obj(vec![
                ("op", Json::Str("delete".into())),
                ("tuple", Json::Num(*tuple as f64)),
            ]),
            PatchOp::Modify { tuple, attr, value } => Json::obj(vec![
                ("op", Json::Str("modify".into())),
                ("tuple", Json::Num(*tuple as f64)),
                ("attr", attr.to_json()),
                ("value", value.to_json()),
            ]),
        }
    }

    fn from_json(v: &Json) -> Result<Self, DecodeError> {
        match req_str(v, "op")? {
            "insert" => {
                let items = v
                    .get("values")
                    .and_then(Json::as_arr)
                    .ok_or(DecodeError::Shape("missing values array"))?;
                Ok(PatchOp::Insert {
                    rel: req_str(v, "rel")?.to_string(),
                    values: items
                        .iter()
                        .map(PatchValue::from_json)
                        .collect::<Result<_, _>>()?,
                })
            }
            "delete" => Ok(PatchOp::Delete {
                tuple: req_u32(v, "tuple")?,
            }),
            "modify" => Ok(PatchOp::Modify {
                tuple: req_u32(v, "tuple")?,
                attr: AttrRef::from_json(v.get("attr").ok_or(DecodeError::Shape("missing attr"))?)?,
                value: PatchValue::from_json(
                    v.get("value").ok_or(DecodeError::Shape("missing value"))?,
                )?,
            }),
            _ => Err(DecodeError::Shape("unknown patch op")),
        }
    }
}

/// A client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Load an instance from a CSV directory into the catalog under `name`,
    /// replacing any existing instance of that name (copy-on-write: clients
    /// already comparing against the old version finish on it).
    Load {
        /// Request id, echoed in the response.
        id: u64,
        /// Catalog name for the loaded instance.
        name: String,
        /// Directory holding one `<relation>.csv` per schema relation.
        dir: String,
    },
    /// List the catalog: instance names and sizes.
    List {
        /// Request id, echoed in the response.
        id: u64,
    },
    /// Compare two catalog instances.
    Compare {
        /// Request id, echoed in the response.
        id: u64,
        /// Catalog name of the left instance.
        left: String,
        /// Catalog name of the right instance.
        right: String,
        /// Which algorithm(s) to run.
        algo: Algo,
        /// λ penalty override (`None` = server default 0.5).
        lambda: Option<f64>,
        /// Per-request wall-clock deadline in milliseconds, measured from
        /// admission. `Some(0)` is answered with a `budget` error. `None`
        /// falls back to the server's default budget.
        budget_ms: Option<u64>,
    },
    /// Top-k similarity search: rank the catalog against one query
    /// instance using the sketch/signature prefilter index, running the
    /// full comparison only on prefilter survivors.
    Search {
        /// Request id, echoed in the response.
        id: u64,
        /// Catalog name of the query instance.
        query: String,
        /// Number of results wanted (0 is answered with `bad_request`).
        k: u64,
        /// λ penalty override (`None` = server default 0.5).
        lambda: Option<f64>,
        /// Per-request wall-clock deadline in milliseconds, measured from
        /// admission; exceeding it mid-search is a `budget` error, never a
        /// truncated result. `None` falls back to the server default.
        budget_ms: Option<u64>,
    },
    /// Discover approximate keys and functional dependencies on one
    /// catalog instance under possible-world `g3` semantics, returning
    /// every minimal constraint within the epsilon gate.
    Discover {
        /// Request id, echoed in the response.
        id: u64,
        /// Catalog name of the instance to analyse.
        name: String,
        /// Violation-ratio gate (`None` = server default 0.05). Must be
        /// in `[0, 1)` — out-of-range values are a `config` error.
        epsilon: Option<f64>,
        /// Maximum determinant/key width (`None` = server default 2).
        max_lhs: Option<u64>,
        /// Support floor for reported constraints (`None` = default 2).
        min_support: Option<u64>,
        /// Per-request wall-clock deadline in milliseconds, measured from
        /// admission; exceeding it mid-lattice is a `budget` error, never
        /// a truncated result. `None` falls back to the server default.
        budget_ms: Option<u64>,
    },
    /// Edit an instance in place: apply tuple-level ops to the named
    /// catalog entry, publishing (and, on a durable server, logging) the
    /// patched copy-on-write snapshot. In-flight comparisons finish on
    /// the pre-patch pin.
    Patch {
        /// Request id, echoed in the response.
        id: u64,
        /// Catalog name of the instance to edit.
        name: String,
        /// The edits, applied in order (the first failing op aborts the
        /// whole patch).
        ops: Vec<PatchOp>,
    },
    /// Server statistics: request counters and per-label observation spans.
    Stats {
        /// Request id, echoed in the response.
        id: u64,
    },
    /// Graceful shutdown: stop accepting, drain in-flight work, close.
    Shutdown {
        /// Request id, echoed in the response.
        id: u64,
    },
}

impl Request {
    /// The request id (echoed by every response).
    pub fn id(&self) -> u64 {
        match self {
            Request::Load { id, .. }
            | Request::List { id }
            | Request::Compare { id, .. }
            | Request::Search { id, .. }
            | Request::Discover { id, .. }
            | Request::Patch { id, .. }
            | Request::Stats { id }
            | Request::Shutdown { id } => *id,
        }
    }

    /// Serializes to one-line JSON bytes (frame payload).
    pub fn encode(&self) -> Vec<u8> {
        self.to_json().encode().into_bytes()
    }

    /// Parses a frame payload.
    pub fn decode(payload: &[u8]) -> Result<Self, DecodeError> {
        Self::from_json(&parse_payload(payload)?)
    }

    fn to_json(&self) -> Json {
        match self {
            Request::Load { id, name, dir } => Json::obj(vec![
                ("id", Json::Num(*id as f64)),
                ("kind", Json::Str("load".into())),
                ("name", Json::Str(name.clone())),
                ("dir", Json::Str(dir.clone())),
            ]),
            Request::List { id } => Json::obj(vec![
                ("id", Json::Num(*id as f64)),
                ("kind", Json::Str("list".into())),
            ]),
            Request::Compare {
                id,
                left,
                right,
                algo,
                lambda,
                budget_ms,
            } => {
                let mut members = vec![
                    ("id", Json::Num(*id as f64)),
                    ("kind", Json::Str("compare".into())),
                    ("left", Json::Str(left.clone())),
                    ("right", Json::Str(right.clone())),
                    ("algo", Json::Str(algo.as_str().into())),
                ];
                if let Some(l) = lambda {
                    members.push(("lambda", Json::Num(*l)));
                }
                if let Some(b) = budget_ms {
                    members.push(("budget_ms", Json::Num(*b as f64)));
                }
                Json::obj(members)
            }
            Request::Search {
                id,
                query,
                k,
                lambda,
                budget_ms,
            } => {
                let mut members = vec![
                    ("id", Json::Num(*id as f64)),
                    ("kind", Json::Str("search".into())),
                    ("query", Json::Str(query.clone())),
                    ("k", Json::Num(*k as f64)),
                ];
                if let Some(l) = lambda {
                    members.push(("lambda", Json::Num(*l)));
                }
                if let Some(b) = budget_ms {
                    members.push(("budget_ms", Json::Num(*b as f64)));
                }
                Json::obj(members)
            }
            Request::Discover {
                id,
                name,
                epsilon,
                max_lhs,
                min_support,
                budget_ms,
            } => {
                let mut members = vec![
                    ("id", Json::Num(*id as f64)),
                    ("kind", Json::Str("discover".into())),
                    ("name", Json::Str(name.clone())),
                ];
                if let Some(e) = epsilon {
                    members.push(("epsilon", Json::Num(*e)));
                }
                if let Some(m) = max_lhs {
                    members.push(("max_lhs", Json::Num(*m as f64)));
                }
                if let Some(s) = min_support {
                    members.push(("min_support", Json::Num(*s as f64)));
                }
                if let Some(b) = budget_ms {
                    members.push(("budget_ms", Json::Num(*b as f64)));
                }
                Json::obj(members)
            }
            Request::Patch { id, name, ops } => Json::obj(vec![
                ("id", Json::Num(*id as f64)),
                ("kind", Json::Str("patch".into())),
                ("name", Json::Str(name.clone())),
                ("ops", Json::Arr(ops.iter().map(PatchOp::to_json).collect())),
            ]),
            Request::Stats { id } => Json::obj(vec![
                ("id", Json::Num(*id as f64)),
                ("kind", Json::Str("stats".into())),
            ]),
            Request::Shutdown { id } => Json::obj(vec![
                ("id", Json::Num(*id as f64)),
                ("kind", Json::Str("shutdown".into())),
            ]),
        }
    }

    fn from_json(v: &Json) -> Result<Self, DecodeError> {
        let id = req_u64(v, "id")?;
        let kind = req_str(v, "kind")?;
        match kind {
            "load" => Ok(Request::Load {
                id,
                name: req_str(v, "name")?.to_string(),
                dir: req_str(v, "dir")?.to_string(),
            }),
            "list" => Ok(Request::List { id }),
            "compare" => {
                let algo = match v.get("algo") {
                    None => Algo::Signature,
                    Some(a) => a
                        .as_str()
                        .and_then(Algo::parse)
                        .ok_or(DecodeError::Shape("unknown algo"))?,
                };
                let lambda = match v.get("lambda") {
                    None | Some(Json::Null) => None,
                    Some(l) => Some(
                        l.as_f64()
                            .ok_or(DecodeError::Shape("lambda not a number"))?,
                    ),
                };
                let budget_ms = match v.get("budget_ms") {
                    None | Some(Json::Null) => None,
                    Some(b) => Some(
                        b.as_u64()
                            .ok_or(DecodeError::Shape("budget_ms not a non-negative integer"))?,
                    ),
                };
                Ok(Request::Compare {
                    id,
                    left: req_str(v, "left")?.to_string(),
                    right: req_str(v, "right")?.to_string(),
                    algo,
                    lambda,
                    budget_ms,
                })
            }
            "search" => {
                let lambda = match v.get("lambda") {
                    None | Some(Json::Null) => None,
                    Some(l) => Some(
                        l.as_f64()
                            .ok_or(DecodeError::Shape("lambda not a number"))?,
                    ),
                };
                let budget_ms = match v.get("budget_ms") {
                    None | Some(Json::Null) => None,
                    Some(b) => Some(
                        b.as_u64()
                            .ok_or(DecodeError::Shape("budget_ms not a non-negative integer"))?,
                    ),
                };
                Ok(Request::Search {
                    id,
                    query: req_str(v, "query")?.to_string(),
                    k: req_u64(v, "k")?,
                    lambda,
                    budget_ms,
                })
            }
            "discover" => Ok(Request::Discover {
                id,
                name: req_str(v, "name")?.to_string(),
                epsilon: opt_f64(v, "epsilon")?,
                max_lhs: opt_u64(v, "max_lhs")?,
                min_support: opt_u64(v, "min_support")?,
                budget_ms: opt_u64(v, "budget_ms")?,
            }),
            "patch" => {
                let items = v
                    .get("ops")
                    .and_then(Json::as_arr)
                    .ok_or(DecodeError::Shape("missing ops array"))?;
                Ok(Request::Patch {
                    id,
                    name: req_str(v, "name")?.to_string(),
                    ops: items
                        .iter()
                        .map(PatchOp::from_json)
                        .collect::<Result<_, _>>()?,
                })
            }
            "stats" => Ok(Request::Stats { id }),
            "shutdown" => Ok(Request::Shutdown { id }),
            _ => Err(DecodeError::Shape("unknown request kind")),
        }
    }
}

/// Typed error codes a response can carry. The `Display` form is the wire
/// string.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The frame payload was not valid JSON (connection closes after this).
    Malformed,
    /// A framing violation the connection survives: the declared frame
    /// length exceeded the server's cap, so the payload was discarded
    /// unread (never buffered) and the stream resumed at the next frame
    /// boundary. Only the oversized request is lost.
    BadFrame,
    /// Valid JSON, but not a known request shape.
    BadRequest,
    /// A `compare`/`load` referenced an instance name not in the catalog.
    UnknownInstance,
    /// Invalid comparison configuration (λ out of range, …) —
    /// [`ic_core::Error::Config`].
    Config,
    /// The per-request deadline expired before a complete result —
    /// [`ic_core::Error::Budget`].
    Budget,
    /// An instance does not fit the catalog schema —
    /// [`ic_core::Error::SchemaMismatch`].
    SchemaMismatch,
    /// Admission control: the bounded request queue was full.
    Overloaded,
    /// The server is shutting down and no longer admits work.
    ShuttingDown,
    /// Loading from disk failed (missing directory, CSV syntax, …).
    Load,
    /// A `patch` op did not apply: unknown tuple or relation, arity
    /// mismatch, or attribute out of range. The instance is unchanged.
    Delta,
    /// Unexpected server-side failure.
    Internal,
}

impl ErrorCode {
    /// The stable wire string of this code.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::Malformed => "malformed",
            ErrorCode::BadFrame => "bad_frame",
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::UnknownInstance => "unknown_instance",
            ErrorCode::Config => "config",
            ErrorCode::Budget => "budget",
            ErrorCode::SchemaMismatch => "schema_mismatch",
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::ShuttingDown => "shutting_down",
            ErrorCode::Load => "load",
            ErrorCode::Delta => "delta",
            ErrorCode::Internal => "internal",
        }
    }

    fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "malformed" => ErrorCode::Malformed,
            "bad_frame" => ErrorCode::BadFrame,
            "bad_request" => ErrorCode::BadRequest,
            "unknown_instance" => ErrorCode::UnknownInstance,
            "config" => ErrorCode::Config,
            "budget" => ErrorCode::Budget,
            "schema_mismatch" => ErrorCode::SchemaMismatch,
            "overloaded" => ErrorCode::Overloaded,
            "shutting_down" => ErrorCode::ShuttingDown,
            "load" => ErrorCode::Load,
            "delta" => ErrorCode::Delta,
            "internal" => ErrorCode::Internal,
            _ => return None,
        })
    }

    /// Maps a core error to its wire code (via [`ic_core::Error::code`],
    /// so the mapping cannot silently drift from the core enum).
    pub fn from_core(e: &ic_core::Error) -> Self {
        match e.code() {
            "config" => ErrorCode::Config,
            "budget" => ErrorCode::Budget,
            "schema_mismatch" => ErrorCode::SchemaMismatch,
            // A schema-level name the request referenced does not exist —
            // a client mistake, not a server failure.
            "unknown_name" => ErrorCode::BadRequest,
            _ => ErrorCode::Internal,
        }
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One catalog entry in a `list` response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InstanceInfo {
    /// Catalog name.
    pub name: String,
    /// Total tuples across all relations.
    pub tuples: u64,
    /// Total labeled-null cells.
    pub null_cells: u64,
}

/// Comparison scores in a `compared` response. `signature`/`exact` are
/// present according to the requested [`Algo`].
#[derive(Debug, Clone, PartialEq)]
pub struct CompareScores {
    /// Signature-algorithm similarity, if requested.
    pub signature: Option<f64>,
    /// Exact-algorithm similarity, if requested.
    pub exact: Option<f64>,
    /// Matched tuple pairs of the signature run (absent for `exact`-only).
    pub pairs: Option<u64>,
    /// Whether the exact search proved optimality (absent unless exact ran).
    pub optimal: Option<bool>,
    /// Server-side wall-clock for the comparison, microseconds.
    pub elapsed_us: u64,
}

/// One ranked hit in a `searched` response.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchResult {
    /// Catalog name of the matched instance.
    pub name: String,
    /// Full signature similarity — bit-identical to a direct `compare` of
    /// the same pair; the prefilter never alters scores, only which
    /// entries get scored.
    pub score: f64,
    /// Matched tuple pairs of the scoring run.
    pub pairs: u64,
}

/// The payload of a `searched` response: ranked hits plus how much of the
/// catalog the prefilter let through to full comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchResults {
    /// Hits ordered by `(score desc, name asc)`, at most `k`.
    pub hits: Vec<SearchResult>,
    /// Entries that received a full comparison.
    pub compared: u64,
    /// Entries in the searched catalog.
    pub total: u64,
    /// Server-side wall-clock for the whole search, microseconds.
    pub elapsed_us: u64,
}

/// One approximate FD in a `discovered` response, with schema references
/// resolved to names server-side.
#[derive(Debug, Clone, PartialEq)]
pub struct DiscoveredFdInfo {
    /// Relation name.
    pub rel: String,
    /// Determinant attribute names, in schema order.
    pub lhs: Vec<String>,
    /// Determined attribute name.
    pub rhs: String,
    /// Best-world violation ratio (some world of the labeled nulls).
    pub g3_min: f64,
    /// Worst-world violation ratio (every world).
    pub g3_max: f64,
    /// Size of the largest all-constant determinant group.
    pub support: u64,
}

/// One approximate key in a `discovered` response.
#[derive(Debug, Clone, PartialEq)]
pub struct DiscoveredKeyInfo {
    /// Relation name.
    pub rel: String,
    /// Key attribute names, in schema order.
    pub attrs: Vec<String>,
    /// Best-world violation ratio.
    pub g3_min: f64,
    /// Worst-world violation ratio.
    pub g3_max: f64,
    /// Tuples null-free on every key attribute.
    pub covered: u64,
}

/// Per-observation-label statistics in a `stats` response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanStat {
    /// Observation label (e.g. `serve.compare`).
    pub label: String,
    /// Finished observations under this label.
    pub reports: u64,
    /// Summed observation wall-clock, microseconds.
    pub wall_us: u64,
}

/// Server statistics payload.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Requests admitted (all kinds, including failed ones).
    pub requests: u64,
    /// Compare requests answered with a result.
    pub completed: u64,
    /// Compare requests rejected by admission control.
    pub overloaded: u64,
    /// Requests answered with any error payload.
    pub errors: u64,
    /// Catalog snapshot version (bumps on every load/replace).
    pub catalog_version: u64,
    /// Per-label `ic-obs` observation summaries, sorted by label.
    pub spans: Vec<SpanStat>,
}

/// A server response. Every variant echoes the request `id`; `Error` is the
/// typed failure payload.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// A `load` succeeded.
    Loaded {
        /// Echoed request id.
        id: u64,
        /// Catalog name the instance was stored under.
        name: String,
        /// Tuples loaded.
        tuples: u64,
    },
    /// A `list` result.
    Listing {
        /// Echoed request id.
        id: u64,
        /// Catalog entries, sorted by name.
        instances: Vec<InstanceInfo>,
    },
    /// A `compare` result.
    Compared {
        /// Echoed request id.
        id: u64,
        /// The scores.
        scores: CompareScores,
    },
    /// A `search` result.
    Searched {
        /// Echoed request id.
        id: u64,
        /// Ranked hits and prefilter accounting.
        results: SearchResults,
    },
    /// A `discover` result: every minimal approximate FD and key within
    /// the requested gate.
    Discovered {
        /// Echoed request id.
        id: u64,
        /// Minimal approximate FDs, in `(rel, |lhs|, lhs, rhs)` order.
        fds: Vec<DiscoveredFdInfo>,
        /// Minimal approximate keys, in `(rel, |attrs|, attrs)` order.
        keys: Vec<DiscoveredKeyInfo>,
        /// Server-side wall-clock for the discovery, microseconds.
        elapsed_us: u64,
    },
    /// A `patch` succeeded.
    Patched {
        /// Echoed request id.
        id: u64,
        /// Catalog name of the patched instance.
        name: String,
        /// Total tuples after the patch.
        tuples: u64,
        /// Tuple ids assigned to the patch's inserts, in op order.
        inserted: Vec<u64>,
    },
    /// A `stats` result.
    Stats {
        /// Echoed request id.
        id: u64,
        /// The counters and span summaries.
        stats: ServerStats,
    },
    /// Acknowledges a `shutdown`; in-flight work drains before the listener
    /// closes.
    ShuttingDown {
        /// Echoed request id.
        id: u64,
    },
    /// A typed failure.
    Error {
        /// Echoed request id (0 if the request id could not be parsed).
        id: u64,
        /// Machine-readable failure class.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

impl Response {
    /// The echoed request id.
    pub fn id(&self) -> u64 {
        match self {
            Response::Loaded { id, .. }
            | Response::Listing { id, .. }
            | Response::Compared { id, .. }
            | Response::Searched { id, .. }
            | Response::Discovered { id, .. }
            | Response::Patched { id, .. }
            | Response::Stats { id, .. }
            | Response::ShuttingDown { id }
            | Response::Error { id, .. } => *id,
        }
    }

    /// Serializes to one-line JSON bytes (frame payload).
    pub fn encode(&self) -> Vec<u8> {
        self.to_json().encode().into_bytes()
    }

    /// Parses a frame payload.
    pub fn decode(payload: &[u8]) -> Result<Self, DecodeError> {
        Self::from_json(&parse_payload(payload)?)
    }

    fn to_json(&self) -> Json {
        match self {
            Response::Loaded { id, name, tuples } => Json::obj(vec![
                ("id", Json::Num(*id as f64)),
                ("kind", Json::Str("loaded".into())),
                ("name", Json::Str(name.clone())),
                ("tuples", Json::Num(*tuples as f64)),
            ]),
            Response::Listing { id, instances } => Json::obj(vec![
                ("id", Json::Num(*id as f64)),
                ("kind", Json::Str("listing".into())),
                (
                    "instances",
                    Json::Arr(
                        instances
                            .iter()
                            .map(|i| {
                                Json::obj(vec![
                                    ("name", Json::Str(i.name.clone())),
                                    ("tuples", Json::Num(i.tuples as f64)),
                                    ("null_cells", Json::Num(i.null_cells as f64)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
            Response::Compared { id, scores } => {
                let mut members = vec![
                    ("id", Json::Num(*id as f64)),
                    ("kind", Json::Str("compared".into())),
                ];
                if let Some(s) = scores.signature {
                    members.push(("signature", Json::Num(s)));
                }
                if let Some(e) = scores.exact {
                    members.push(("exact", Json::Num(e)));
                }
                if let Some(p) = scores.pairs {
                    members.push(("pairs", Json::Num(p as f64)));
                }
                if let Some(o) = scores.optimal {
                    members.push(("optimal", Json::Bool(o)));
                }
                members.push(("elapsed_us", Json::Num(scores.elapsed_us as f64)));
                Json::obj(members)
            }
            Response::Searched { id, results } => Json::obj(vec![
                ("id", Json::Num(*id as f64)),
                ("kind", Json::Str("searched".into())),
                (
                    "hits",
                    Json::Arr(
                        results
                            .hits
                            .iter()
                            .map(|h| {
                                Json::obj(vec![
                                    ("name", Json::Str(h.name.clone())),
                                    ("score", Json::Num(h.score)),
                                    ("pairs", Json::Num(h.pairs as f64)),
                                ])
                            })
                            .collect(),
                    ),
                ),
                ("compared", Json::Num(results.compared as f64)),
                ("total", Json::Num(results.total as f64)),
                ("elapsed_us", Json::Num(results.elapsed_us as f64)),
            ]),
            Response::Discovered {
                id,
                fds,
                keys,
                elapsed_us,
            } => Json::obj(vec![
                ("id", Json::Num(*id as f64)),
                ("kind", Json::Str("discovered".into())),
                (
                    "fds",
                    Json::Arr(
                        fds.iter()
                            .map(|fd| {
                                Json::obj(vec![
                                    ("rel", Json::Str(fd.rel.clone())),
                                    (
                                        "lhs",
                                        Json::Arr(
                                            fd.lhs.iter().map(|a| Json::Str(a.clone())).collect(),
                                        ),
                                    ),
                                    ("rhs", Json::Str(fd.rhs.clone())),
                                    ("g3_min", Json::Num(fd.g3_min)),
                                    ("g3_max", Json::Num(fd.g3_max)),
                                    ("support", Json::Num(fd.support as f64)),
                                ])
                            })
                            .collect(),
                    ),
                ),
                (
                    "keys",
                    Json::Arr(
                        keys.iter()
                            .map(|k| {
                                Json::obj(vec![
                                    ("rel", Json::Str(k.rel.clone())),
                                    (
                                        "attrs",
                                        Json::Arr(
                                            k.attrs.iter().map(|a| Json::Str(a.clone())).collect(),
                                        ),
                                    ),
                                    ("g3_min", Json::Num(k.g3_min)),
                                    ("g3_max", Json::Num(k.g3_max)),
                                    ("covered", Json::Num(k.covered as f64)),
                                ])
                            })
                            .collect(),
                    ),
                ),
                ("elapsed_us", Json::Num(*elapsed_us as f64)),
            ]),
            Response::Patched {
                id,
                name,
                tuples,
                inserted,
            } => Json::obj(vec![
                ("id", Json::Num(*id as f64)),
                ("kind", Json::Str("patched".into())),
                ("name", Json::Str(name.clone())),
                ("tuples", Json::Num(*tuples as f64)),
                (
                    "inserted",
                    Json::Arr(inserted.iter().map(|t| Json::Num(*t as f64)).collect()),
                ),
            ]),
            Response::Stats { id, stats } => Json::obj(vec![
                ("id", Json::Num(*id as f64)),
                ("kind", Json::Str("stats".into())),
                ("requests", Json::Num(stats.requests as f64)),
                ("completed", Json::Num(stats.completed as f64)),
                ("overloaded", Json::Num(stats.overloaded as f64)),
                ("errors", Json::Num(stats.errors as f64)),
                ("catalog_version", Json::Num(stats.catalog_version as f64)),
                (
                    "spans",
                    Json::Arr(
                        stats
                            .spans
                            .iter()
                            .map(|s| {
                                Json::obj(vec![
                                    ("label", Json::Str(s.label.clone())),
                                    ("reports", Json::Num(s.reports as f64)),
                                    ("wall_us", Json::Num(s.wall_us as f64)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
            Response::ShuttingDown { id } => Json::obj(vec![
                ("id", Json::Num(*id as f64)),
                ("kind", Json::Str("shutting_down".into())),
            ]),
            Response::Error { id, code, message } => Json::obj(vec![
                ("id", Json::Num(*id as f64)),
                ("kind", Json::Str("error".into())),
                ("code", Json::Str(code.as_str().into())),
                ("message", Json::Str(message.clone())),
            ]),
        }
    }

    fn from_json(v: &Json) -> Result<Self, DecodeError> {
        let id = req_u64(v, "id")?;
        let kind = req_str(v, "kind")?;
        match kind {
            "loaded" => Ok(Response::Loaded {
                id,
                name: req_str(v, "name")?.to_string(),
                tuples: req_u64(v, "tuples")?,
            }),
            "listing" => {
                let items = v
                    .get("instances")
                    .and_then(Json::as_arr)
                    .ok_or(DecodeError::Shape("missing instances array"))?;
                let mut instances = Vec::with_capacity(items.len());
                for item in items {
                    instances.push(InstanceInfo {
                        name: req_str(item, "name")?.to_string(),
                        tuples: req_u64(item, "tuples")?,
                        null_cells: req_u64(item, "null_cells")?,
                    });
                }
                Ok(Response::Listing { id, instances })
            }
            "compared" => Ok(Response::Compared {
                id,
                scores: CompareScores {
                    signature: opt_f64(v, "signature")?,
                    exact: opt_f64(v, "exact")?,
                    pairs: match v.get("pairs") {
                        None | Some(Json::Null) => None,
                        Some(p) => Some(
                            p.as_u64()
                                .ok_or(DecodeError::Shape("pairs not an integer"))?,
                        ),
                    },
                    optimal: match v.get("optimal") {
                        None | Some(Json::Null) => None,
                        Some(o) => Some(
                            o.as_bool()
                                .ok_or(DecodeError::Shape("optimal not a boolean"))?,
                        ),
                    },
                    elapsed_us: req_u64(v, "elapsed_us")?,
                },
            }),
            "searched" => {
                let items = v
                    .get("hits")
                    .and_then(Json::as_arr)
                    .ok_or(DecodeError::Shape("missing hits array"))?;
                let mut hits = Vec::with_capacity(items.len());
                for item in items {
                    hits.push(SearchResult {
                        name: req_str(item, "name")?.to_string(),
                        score: item
                            .get("score")
                            .and_then(Json::as_f64)
                            .ok_or(DecodeError::Shape("missing or non-number score"))?,
                        pairs: req_u64(item, "pairs")?,
                    });
                }
                Ok(Response::Searched {
                    id,
                    results: SearchResults {
                        hits,
                        compared: req_u64(v, "compared")?,
                        total: req_u64(v, "total")?,
                        elapsed_us: req_u64(v, "elapsed_us")?,
                    },
                })
            }
            "discovered" => {
                let req_f64 = |v: &Json, key: &'static str| -> Result<f64, DecodeError> {
                    v.get(key)
                        .and_then(Json::as_f64)
                        .ok_or(DecodeError::Shape("missing or non-number field"))
                };
                let str_arr = |v: &Json, key: &'static str| -> Result<Vec<String>, DecodeError> {
                    v.get(key)
                        .and_then(Json::as_arr)
                        .ok_or(DecodeError::Shape("missing attribute array"))?
                        .iter()
                        .map(|a| {
                            a.as_str()
                                .map(str::to_string)
                                .ok_or(DecodeError::Shape("attribute name not a string"))
                        })
                        .collect()
                };
                let fd_items = v
                    .get("fds")
                    .and_then(Json::as_arr)
                    .ok_or(DecodeError::Shape("missing fds array"))?;
                let mut fds = Vec::with_capacity(fd_items.len());
                for item in fd_items {
                    fds.push(DiscoveredFdInfo {
                        rel: req_str(item, "rel")?.to_string(),
                        lhs: str_arr(item, "lhs")?,
                        rhs: req_str(item, "rhs")?.to_string(),
                        g3_min: req_f64(item, "g3_min")?,
                        g3_max: req_f64(item, "g3_max")?,
                        support: req_u64(item, "support")?,
                    });
                }
                let key_items = v
                    .get("keys")
                    .and_then(Json::as_arr)
                    .ok_or(DecodeError::Shape("missing keys array"))?;
                let mut keys = Vec::with_capacity(key_items.len());
                for item in key_items {
                    keys.push(DiscoveredKeyInfo {
                        rel: req_str(item, "rel")?.to_string(),
                        attrs: str_arr(item, "attrs")?,
                        g3_min: req_f64(item, "g3_min")?,
                        g3_max: req_f64(item, "g3_max")?,
                        covered: req_u64(item, "covered")?,
                    });
                }
                Ok(Response::Discovered {
                    id,
                    fds,
                    keys,
                    elapsed_us: req_u64(v, "elapsed_us")?,
                })
            }
            "patched" => {
                let items = v
                    .get("inserted")
                    .and_then(Json::as_arr)
                    .ok_or(DecodeError::Shape("missing inserted array"))?;
                Ok(Response::Patched {
                    id,
                    name: req_str(v, "name")?.to_string(),
                    tuples: req_u64(v, "tuples")?,
                    inserted: items
                        .iter()
                        .map(|t| {
                            t.as_u64()
                                .ok_or(DecodeError::Shape("inserted id not an integer"))
                        })
                        .collect::<Result<_, _>>()?,
                })
            }
            "stats" => {
                let items = v
                    .get("spans")
                    .and_then(Json::as_arr)
                    .ok_or(DecodeError::Shape("missing spans array"))?;
                let mut spans = Vec::with_capacity(items.len());
                for item in items {
                    spans.push(SpanStat {
                        label: req_str(item, "label")?.to_string(),
                        reports: req_u64(item, "reports")?,
                        wall_us: req_u64(item, "wall_us")?,
                    });
                }
                Ok(Response::Stats {
                    id,
                    stats: ServerStats {
                        requests: req_u64(v, "requests")?,
                        completed: req_u64(v, "completed")?,
                        overloaded: req_u64(v, "overloaded")?,
                        errors: req_u64(v, "errors")?,
                        catalog_version: req_u64(v, "catalog_version")?,
                        spans,
                    },
                })
            }
            "shutting_down" => Ok(Response::ShuttingDown { id }),
            "error" => Ok(Response::Error {
                id,
                code: ErrorCode::parse(req_str(v, "code")?)
                    .ok_or(DecodeError::Shape("unknown error code"))?,
                message: req_str(v, "message")?.to_string(),
            }),
            _ => Err(DecodeError::Shape("unknown response kind")),
        }
    }
}

/// Why a frame payload failed to decode.
#[derive(Debug, Clone, PartialEq)]
pub enum DecodeError {
    /// Not UTF-8 or not valid JSON — the peer does not speak the protocol.
    Syntax(String),
    /// Valid JSON that is not a known message shape.
    Shape(&'static str),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Syntax(e) => write!(f, "malformed payload: {e}"),
            DecodeError::Shape(e) => write!(f, "unrecognized message: {e}"),
        }
    }
}

impl std::error::Error for DecodeError {}

fn parse_payload(payload: &[u8]) -> Result<Json, DecodeError> {
    let text = std::str::from_utf8(payload)
        .map_err(|e| DecodeError::Syntax(format!("payload is not UTF-8: {e}")))?;
    json::parse(text).map_err(|e| DecodeError::Syntax(e.to_string()))
}

fn req_str<'a>(v: &'a Json, key: &'static str) -> Result<&'a str, DecodeError> {
    v.get(key)
        .and_then(Json::as_str)
        .ok_or(DecodeError::Shape("missing or non-string field"))
}

fn req_u64(v: &Json, key: &'static str) -> Result<u64, DecodeError> {
    v.get(key)
        .and_then(Json::as_u64)
        .ok_or(DecodeError::Shape("missing or non-integer field"))
}

fn req_u32(v: &Json, key: &'static str) -> Result<u32, DecodeError> {
    req_u64(v, key)?
        .try_into()
        .map_err(|_| DecodeError::Shape("field out of u32 range"))
}

fn opt_f64(v: &Json, key: &'static str) -> Result<Option<f64>, DecodeError> {
    match v.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(n) => Ok(Some(
            n.as_f64().ok_or(DecodeError::Shape("field not a number"))?,
        )),
    }
}

fn opt_u64(v: &Json, key: &'static str) -> Result<Option<u64>, DecodeError> {
    match v.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(n) => Ok(Some(
            n.as_u64()
                .ok_or(DecodeError::Shape("field not a non-negative integer"))?,
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip_all_kinds() {
        let reqs = [
            Request::Load {
                id: 1,
                name: "left — β".into(),
                dir: "/tmp/has\nnewline".into(),
            },
            Request::List { id: 2 },
            Request::Compare {
                id: 3,
                left: "a\"quoted\"".into(),
                right: "b".into(),
                algo: Algo::Both,
                lambda: Some(0.25),
                budget_ms: Some(0),
            },
            Request::Compare {
                id: 4,
                left: "a".into(),
                right: "b".into(),
                algo: Algo::Signature,
                lambda: None,
                budget_ms: None,
            },
            Request::Search {
                id: 5,
                query: "néedle".into(),
                k: 10,
                lambda: Some(0.5),
                budget_ms: Some(250),
            },
            Request::Search {
                id: 6,
                query: "q".into(),
                k: 0,
                lambda: None,
                budget_ms: None,
            },
            Request::Discover {
                id: 13,
                name: "νear".into(),
                epsilon: Some(0.0625),
                max_lhs: Some(3),
                min_support: Some(4),
                budget_ms: Some(500),
            },
            Request::Discover {
                id: 14,
                name: "bare".into(),
                epsilon: None,
                max_lhs: None,
                min_support: None,
                budget_ms: None,
            },
            Request::Patch {
                id: 11,
                name: "νictim".into(),
                ops: vec![
                    PatchOp::Insert {
                        rel: "R".into(),
                        values: vec![
                            PatchValue::Const("x\"y\"".into()),
                            PatchValue::FreshNull,
                            PatchValue::Null(7),
                        ],
                    },
                    PatchOp::Delete { tuple: 3 },
                    PatchOp::Modify {
                        tuple: 5,
                        attr: AttrRef::Name("B".into()),
                        value: PatchValue::Const("z".into()),
                    },
                    PatchOp::Modify {
                        tuple: 6,
                        attr: AttrRef::Index(0),
                        value: PatchValue::FreshNull,
                    },
                ],
            },
            Request::Patch {
                id: 12,
                name: "empty".into(),
                ops: vec![],
            },
            Request::Stats { id: 7 },
            Request::Shutdown { id: u64::MAX >> 12 },
        ];
        for r in reqs {
            assert_eq!(Request::decode(&r.encode()).unwrap(), r);
        }
    }

    #[test]
    fn response_roundtrip_all_kinds() {
        let resps = [
            Response::Loaded {
                id: 1,
                name: "νame".into(),
                tuples: 42,
            },
            Response::Listing {
                id: 2,
                instances: vec![InstanceInfo {
                    name: "i".into(),
                    tuples: 3,
                    null_cells: 1,
                }],
            },
            Response::Compared {
                id: 3,
                scores: CompareScores {
                    signature: Some(0.875),
                    exact: None,
                    pairs: Some(9),
                    optimal: None,
                    elapsed_us: 1234,
                },
            },
            Response::Searched {
                id: 9,
                results: SearchResults {
                    hits: vec![
                        SearchResult {
                            name: "c0v1".into(),
                            score: 0.9375,
                            pairs: 12,
                        },
                        SearchResult {
                            name: "c0v2".into(),
                            score: 0.5,
                            pairs: 7,
                        },
                    ],
                    compared: 5,
                    total: 40,
                    elapsed_us: 987,
                },
            },
            Response::Searched {
                id: 10,
                results: SearchResults {
                    hits: vec![],
                    compared: 0,
                    total: 0,
                    elapsed_us: 1,
                },
            },
            Response::Stats {
                id: 4,
                stats: ServerStats {
                    requests: 10,
                    completed: 8,
                    overloaded: 1,
                    errors: 1,
                    catalog_version: 3,
                    spans: vec![SpanStat {
                        label: "serve.compare".into(),
                        reports: 8,
                        wall_us: 5000,
                    }],
                },
            },
            Response::Discovered {
                id: 13,
                fds: vec![DiscoveredFdInfo {
                    rel: "NC".into(),
                    lhs: vec!["f0".into(), "c0".into()],
                    rhs: "f2".into(),
                    g3_min: 0.02734375,
                    g3_max: 0.04,
                    support: 20,
                }],
                keys: vec![DiscoveredKeyInfo {
                    rel: "NC".into(),
                    attrs: vec!["k0".into(), "k1".into()],
                    g3_min: 0.02734375,
                    g3_max: 0.0625,
                    covered: 230,
                }],
                elapsed_us: 4321,
            },
            Response::Discovered {
                id: 14,
                fds: vec![],
                keys: vec![],
                elapsed_us: 2,
            },
            Response::Patched {
                id: 11,
                name: "νictim".into(),
                tuples: 9,
                inserted: vec![4, 7],
            },
            Response::Patched {
                id: 12,
                name: "e".into(),
                tuples: 0,
                inserted: vec![],
            },
            Response::ShuttingDown { id: 5 },
            Response::Error {
                id: 6,
                code: ErrorCode::Overloaded,
                message: "queue full\n(2 slots)".into(),
            },
        ];
        for r in resps {
            assert_eq!(Response::decode(&r.encode()).unwrap(), r);
        }
    }

    #[test]
    fn decode_distinguishes_syntax_from_shape() {
        assert!(matches!(
            Request::decode(b"{nope"),
            Err(DecodeError::Syntax(_))
        ));
        assert!(matches!(
            Request::decode(b"{\"id\":1,\"kind\":\"dance\"}"),
            Err(DecodeError::Shape(_))
        ));
        assert!(matches!(
            Request::decode(b"{\"kind\":\"list\"}"),
            Err(DecodeError::Shape(_)) // id missing
        ));
    }

    #[test]
    fn compare_defaults_algo_to_signature() {
        let req =
            Request::decode(b"{\"id\":1,\"kind\":\"compare\",\"left\":\"a\",\"right\":\"b\"}")
                .unwrap();
        assert!(matches!(
            req,
            Request::Compare {
                algo: Algo::Signature,
                lambda: None,
                budget_ms: None,
                ..
            }
        ));
    }

    #[test]
    fn core_error_mapping() {
        use ic_core::score::ConfigError;
        let e = ic_core::Error::Config(ConfigError::LambdaOutOfRange(2.0));
        assert_eq!(ErrorCode::from_core(&e), ErrorCode::Config);
        let e = ic_core::Error::Budget {
            budget: None,
            elapsed: std::time::Duration::ZERO,
        };
        assert_eq!(ErrorCode::from_core(&e), ErrorCode::Budget);
        let e = ic_core::Error::SchemaMismatch {
            expected: 1,
            found: 2,
        };
        assert_eq!(ErrorCode::from_core(&e), ErrorCode::SchemaMismatch);
        let e = ic_core::Error::UnknownName {
            kind: "relation",
            name: "Nope".into(),
        };
        assert_eq!(ErrorCode::from_core(&e), ErrorCode::BadRequest);
    }
}
