//! The server runtime: connection handling, bounded request queue,
//! deadline-aware `ic-pool` workers, graceful shutdown.
//!
//! ## Two runtimes, one contract
//!
//! [`ServerConfig::runtime`] selects how connections are driven; every
//! observable behavior — bit-identical scores, typed error codes,
//! admission control, drain-then-close shutdown — is the same under both:
//!
//! * [`Runtime::EventLoop`] (Linux, the default there) — a single
//!   **readiness-driven** thread multiplexes the listener and every
//!   connection over a hand-rolled [`crate::poll`] epoll wrapper.
//!   Per-connection state machines (see `conn.rs`) feed the incremental
//!   [`FrameReader`], writes are nonblocking and buffered with a
//!   per-connection backpressure cap, and requests **pipeline**: a client
//!   may write many frames before reading; responses complete out of
//!   order and are matched by the echoed `id`. Memory and thread count
//!   stay bounded at tens of thousands of idle connections.
//! * [`Runtime::Threaded`] (portable fallback) — an acceptor thread
//!   spawns one handler thread per connection; each handler decodes one
//!   frame at a time and blocks for its response (requests on one
//!   connection are serialized, so pipelined clients still work — their
//!   responses just arrive in order).
//!
//! In both runtimes, catalog requests (`load`, `list`, `stats`,
//! `shutdown`) are answered inline, and `compare`/`search` work is
//! submitted — together with the catalog [`Snapshot`] taken at admission —
//! into a **bounded queue**. If the queue is full the request is rejected
//! *immediately* with a typed `overloaded` response instead of blocking.
//! A **worker host** thread runs [`ServerConfig::workers`] worker loops
//! inside an [`ic_pool::scope`]. Workers are *deadline-aware*: a request
//! whose deadline expired while queued is answered with a `budget` error
//! without touching the comparison engine.
//!
//! Note that server workers occupy pool threads for the lifetime of the
//! server; `ic-pool`'s caller-helping keeps unrelated `par_map` users live
//! regardless, but size `workers` with that sharing in mind.
//!
//! ## Shutdown
//!
//! [`ServerHandle::shutdown`] (or a wire `shutdown` request) flips a stop
//! flag. Admission stops, every admitted request drains through the
//! workers and is written back (the event loop gives stalled peers
//! [`ServerConfig::drain_grace`] to take their last bytes), and only then
//! do the worker loops exit — no admitted request is ever dropped.

use crate::catalog::{CatalogError, ServeCatalog, Snapshot};
use crate::frame::{write_frame, FrameError, FrameReader, MAX_FRAME_LEN};
use crate::json::Json;
use crate::lockutil::lock_recover;
use crate::proto::{
    Algo, AttrRef, CompareScores, DecodeError, DiscoveredFdInfo, DiscoveredKeyInfo, ErrorCode,
    InstanceInfo, PatchOp, PatchValue, Request, Response, SearchResult, SearchResults, ServerStats,
    SpanStat,
};
use crate::sigcache::SigMapCache;
use ic_core::{apply_delta_repairing, Comparator, Delta, DeltaOp, SignatureConfig};
use ic_index::{CatalogIndex, SearchOptions};
use ic_model::{AttrId, Instance, NullId, RelId, TupleId, Value};
use ic_obs::StatsSink;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// The observation label every compare request runs under; its report
/// count in the `stats` response equals the number of compares processed.
pub const COMPARE_LABEL: &str = "serve.compare";

/// The observation label every search request runs under.
pub const SEARCH_LABEL: &str = "serve.search";

/// The observation label every constraint-discovery request runs under.
pub const DISCOVER_LABEL: &str = "serve.discover";

/// Which connection runtime drives the server (see [module docs](self)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Runtime {
    /// Readiness-driven epoll event loop: one driver thread for every
    /// connection, nonblocking buffered writes, pipelined requests with
    /// out-of-order completion. Linux-only; on other platforms
    /// [`Server::start`] falls back to [`Runtime::Threaded`].
    EventLoop,
    /// Thread-per-connection fallback: portable, fine at hundreds of
    /// connections, with blocking per-connection reads and writes.
    Threaded,
}

impl Runtime {
    /// The platform default, overridable with the `IC_SERVE_RUNTIME`
    /// environment variable (`"event"` or `"threaded"`) — which is how CI
    /// runs the whole serve suite under both runtimes.
    pub fn from_env() -> Self {
        match std::env::var("IC_SERVE_RUNTIME").as_deref() {
            Ok("threaded") => Runtime::Threaded,
            Ok("event") => Runtime::EventLoop,
            _ => {
                if cfg!(target_os = "linux") {
                    Runtime::EventLoop
                } else {
                    Runtime::Threaded
                }
            }
        }
    }
}

/// Tuning knobs for [`Server::start`].
#[derive(Clone)]
pub struct ServerConfig {
    /// Which connection runtime drives the server.
    pub runtime: Runtime,
    /// Worker loops fed by the request queue (≥ 1).
    pub workers: usize,
    /// Bounded queue capacity; a full queue rejects with `overloaded`.
    pub queue_depth: usize,
    /// Deadline applied to `compare`/`search` requests that carry no
    /// `budget_ms`. `None` = unbounded.
    pub default_budget: Option<Duration>,
    /// How often blocked reads re-check the stop flag. Bounds both the
    /// shutdown latency and the idle wakeup rate.
    pub poll_interval: Duration,
    /// Per-connection cap on the *declared* length of an incoming frame.
    /// An oversized header is answered with a typed `bad_frame` error and
    /// the payload is discarded without ever being buffered; the
    /// connection survives. Clamped to [`MAX_FRAME_LEN`].
    pub max_frame_len: usize,
    /// Event-loop runtime only: cap on buffered unsent response bytes per
    /// connection. A peer that pipelines requests but stops reading
    /// responses (slowloris) trips the cap and is disconnected — the
    /// close is recorded as a backpressure disconnect in [`ConnStats`] —
    /// while other connections proceed unaffected.
    pub max_write_buffer: usize,
    /// Event-loop runtime only: how long shutdown waits for peers to take
    /// delivery of already-computed responses once all in-flight work has
    /// drained. A stalled peer cannot hold shutdown hostage beyond this.
    pub drain_grace: Duration,
    /// Close connections with no frame activity for this long (`None` =
    /// never). A connection with requests still in flight is never shed.
    /// Both runtimes enforce it at `poll_interval` granularity; idle
    /// closes are counted in [`ConnStats::closed_idle`].
    pub idle_timeout: Option<Duration>,
    /// Artificial per-job delay in the workers, applied before the
    /// deadline check. A test/bench hook: it makes queue occupancy (and
    /// thus admission-control behavior) deterministic. `None` in
    /// production.
    pub worker_delay: Option<Duration>,
    /// An additional observation sink teed alongside the server's own
    /// stats aggregation — external metrics export. A sink that panics
    /// fails the request it observed with a typed `internal` error; it
    /// never takes down a worker or poisons server state.
    pub extra_sink: Option<Arc<dyn ic_obs::Sink>>,
}

impl std::fmt::Debug for ServerConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerConfig")
            .field("runtime", &self.runtime)
            .field("workers", &self.workers)
            .field("queue_depth", &self.queue_depth)
            .field("default_budget", &self.default_budget)
            .field("poll_interval", &self.poll_interval)
            .field("max_frame_len", &self.max_frame_len)
            .field("max_write_buffer", &self.max_write_buffer)
            .field("drain_grace", &self.drain_grace)
            .field("idle_timeout", &self.idle_timeout)
            .field("worker_delay", &self.worker_delay)
            .field("extra_sink", &self.extra_sink.is_some())
            .finish()
    }
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            runtime: Runtime::from_env(),
            workers: 2,
            queue_depth: 64,
            default_budget: None,
            poll_interval: Duration::from_millis(25),
            max_frame_len: MAX_FRAME_LEN,
            max_write_buffer: 1 << 20,
            drain_grace: Duration::from_millis(250),
            idle_timeout: None,
            worker_delay: None,
            extra_sink: None,
        }
    }
}

/// What an admitted job does once a worker picks it up.
pub(crate) enum JobKind {
    Compare {
        left: String,
        right: String,
        algo: Algo,
        lambda: Option<f64>,
    },
    Search {
        query: String,
        k: usize,
        lambda: Option<f64>,
    },
    Discover {
        name: String,
        epsilon: Option<f64>,
        max_lhs: Option<u64>,
        min_support: Option<u64>,
    },
}

/// Where a worker's finished [`Response`] goes.
pub(crate) enum ReplyTo {
    /// Threaded runtime: the connection thread blocks on the paired
    /// receiver.
    Channel(std::sync::mpsc::Sender<Response>),
    /// Event-loop runtime: completions are posted to the driver thread
    /// (keyed by connection token) and the poller is woken to route them.
    #[cfg(target_os = "linux")]
    Token {
        token: u64,
        tx: std::sync::mpsc::Sender<(u64, Response)>,
        wake: Arc<crate::poll::WakeFd>,
    },
}

impl ReplyTo {
    fn send(&self, resp: Response) {
        match self {
            ReplyTo::Channel(tx) => {
                let _ = tx.send(resp);
            }
            #[cfg(target_os = "linux")]
            ReplyTo::Token { token, tx, wake } => {
                // Send *then* wake: the driver drains completions after
                // every poll wakeup, so the pair can never be lost.
                let _ = tx.send((*token, resp));
                wake.wake();
            }
        }
    }
}

/// One admitted request, parked in the bounded queue.
pub(crate) struct Job {
    pub(crate) id: u64,
    pub(crate) kind: JobKind,
    /// The catalog state this request was admitted under (copy-on-write:
    /// concurrent loads cannot tear it).
    pub(crate) snapshot: Arc<Snapshot>,
    /// Absolute deadline derived from `budget_ms` at admission.
    pub(crate) deadline: Option<Instant>,
    pub(crate) reply: ReplyTo,
}

/// Lifetime connection counters, incremented by both runtimes.
#[derive(Default)]
pub(crate) struct ConnCounters {
    pub(crate) accepted: AtomicU64,
    pub(crate) closed_peer: AtomicU64,
    pub(crate) closed_protocol: AtomicU64,
    pub(crate) closed_backpressure: AtomicU64,
    pub(crate) closed_drained: AtomicU64,
    pub(crate) closed_idle: AtomicU64,
    pub(crate) coalesced_frames: AtomicU64,
}

/// A point-in-time snapshot of connection lifecycle counters — how many
/// connections were accepted and why closed ones went away. See
/// [`ServerHandle::conn_stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConnStats {
    /// Connections accepted since the server started.
    pub accepted: u64,
    /// Closed because the peer disconnected (or transport error).
    pub closed_peer: u64,
    /// Closed after an unrecoverable protocol violation (broken framing).
    pub closed_protocol: u64,
    /// Disconnected for exceeding [`ServerConfig::max_write_buffer`] —
    /// the typed reason a stalled (slowloris) reader is removed.
    pub closed_backpressure: u64,
    /// Closed by graceful drain (shutdown, or a `shutdown`-acknowledging
    /// connection that flushed its final response).
    pub closed_drained: u64,
    /// Shed for exceeding [`ServerConfig::idle_timeout`] with no frame
    /// activity and nothing in flight.
    pub closed_idle: u64,
    /// Response frames that rode a flush batch behind an earlier frame for
    /// the same connection — completions landing in the same event-loop
    /// tick are queued together and flushed with one write syscall, and
    /// each coalesced frame is a syscall avoided (event-loop runtime
    /// only; the threaded runtime writes per response).
    pub coalesced_frames: u64,
}

/// State shared by every server thread.
pub(crate) struct Shared {
    pub(crate) catalog: Arc<ServeCatalog>,
    pub(crate) cfg: ServerConfig,
    pub(crate) stop: AtomicBool,
    /// `Some` while the server admits compare work; taken (and thereby
    /// closed) during shutdown so the workers drain and exit.
    pub(crate) queue: Mutex<Option<SyncSender<Job>>>,
    stats_sink: Arc<StatsSink>,
    /// Signature maps of hot catalog instances, reused across `compare`
    /// requests and invalidated by pointer identity when `load` replaces
    /// an instance; swept on every catalog mutation so removed instances
    /// do not stay pinned (see [`SigMapCache`]).
    sig_cache: Arc<SigMapCache>,
    /// The sketch + signature prefilter index behind `search` requests,
    /// synchronised lazily to the admitted snapshot.
    index: Arc<CatalogIndex>,
    /// Highest catalog version the index has been synchronised to.
    /// Guards [`ensure_index_synced`] so concurrent searches do not
    /// duplicate sync work; lookups inside `topk` stay concurrent.
    index_version: Mutex<u64>,
    pub(crate) requests: AtomicU64,
    completed: AtomicU64,
    pub(crate) overloaded: AtomicU64,
    pub(crate) errors: AtomicU64,
    pub(crate) conns: ConnCounters,
}

impl Shared {
    pub(crate) fn stopping(&self) -> bool {
        self.stop.load(Ordering::Acquire)
    }

    /// The sink jobs observe under: the server's own stats aggregation,
    /// teed with the configured extra sink if any.
    fn job_sink(&self) -> Arc<dyn ic_obs::Sink> {
        let stats = Arc::clone(&self.stats_sink) as Arc<dyn ic_obs::Sink>;
        match &self.cfg.extra_sink {
            None => stats,
            Some(extra) => Arc::new(TeeSink {
                first: stats,
                second: Arc::clone(extra),
            }),
        }
    }
}

/// Fans one observation report out to two sinks, stats first — so the
/// server's own counters are recorded even if the extra sink panics.
struct TeeSink {
    first: Arc<dyn ic_obs::Sink>,
    second: Arc<dyn ic_obs::Sink>,
}

impl ic_obs::Sink for TeeSink {
    fn on_report(&self, report: &ic_obs::Report) {
        self.first.on_report(report);
        self.second.on_report(report);
    }
}

/// The embeddable similarity server. Construct with [`Server::start`];
/// the returned [`ServerHandle`] owns every thread.
pub struct Server;

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts the configured runtime and worker threads over `catalog`.
    pub fn start(
        catalog: Arc<ServeCatalog>,
        addr: impl ToSocketAddrs,
        cfg: ServerConfig,
    ) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;

        // Requested EventLoop degrades to Threaded off-Linux: the epoll
        // wrapper does not exist there and the contract is identical.
        let runtime = if cfg!(target_os = "linux") {
            cfg.runtime
        } else {
            Runtime::Threaded
        };

        let (tx, rx) = sync_channel::<Job>(cfg.queue_depth.max(1));
        let sig_cache = Arc::new(SigMapCache::new());
        // Removal-driven eviction: every successful catalog mutation sweeps
        // the cache, so entries for removed (or replaced) instances are
        // dropped even if nobody ever looks them up again.
        let catalog_sub = {
            let cache = Arc::clone(&sig_cache);
            catalog.subscribe(Box::new(move |snap| {
                cache.sweep(snap);
            }))
        };
        let shared = Arc::new(Shared {
            catalog,
            cfg,
            stop: AtomicBool::new(false),
            queue: Mutex::new(Some(tx)),
            stats_sink: Arc::new(StatsSink::new()),
            sig_cache,
            index: Arc::new(CatalogIndex::new(&SignatureConfig::default())),
            index_version: Mutex::new(0),
            requests: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            overloaded: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            conns: ConnCounters::default(),
        });

        let worker_host = {
            let shared = Arc::clone(&shared);
            let rx = Arc::new(Mutex::new(rx));
            std::thread::Builder::new()
                .name("ic-serve-workers".into())
                .spawn(move || run_workers(&shared, &rx))?
        };

        let threads = match runtime {
            Runtime::Threaded => {
                let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
                let acceptor = {
                    let shared = Arc::clone(&shared);
                    let conns = Arc::clone(&conns);
                    std::thread::Builder::new()
                        .name("ic-serve-acceptor".into())
                        .spawn(move || run_acceptor(&shared, &listener, &conns))?
                };
                RuntimeThreads::Threaded {
                    acceptor: Some(acceptor),
                    conns,
                }
            }
            Runtime::EventLoop => Self::start_event_loop(&shared, listener)?,
        };

        Ok(ServerHandle {
            local_addr,
            shared,
            threads,
            worker_host: Some(worker_host),
            catalog_sub,
        })
    }

    #[cfg(target_os = "linux")]
    fn start_event_loop(shared: &Arc<Shared>, listener: TcpListener) -> io::Result<RuntimeThreads> {
        use crate::conn::run_event_loop;
        use crate::poll::{Interest, Poller, WakeFd, TOKEN_LISTENER, TOKEN_WAKE};
        use std::os::fd::AsRawFd;

        let poller = Poller::new()?;
        let wake = Arc::new(WakeFd::new()?);
        poller.add(listener.as_raw_fd(), TOKEN_LISTENER, Interest::READ)?;
        poller.add(wake.as_raw_fd(), TOKEN_WAKE, Interest::READ)?;
        let (ctx, crx) = std::sync::mpsc::channel::<(u64, Response)>();

        let driver = {
            let shared = Arc::clone(shared);
            let wake = Arc::clone(&wake);
            std::thread::Builder::new()
                .name("ic-serve-loop".into())
                .spawn(move || run_event_loop(&shared, poller, listener, &wake, ctx, crx))?
        };
        Ok(RuntimeThreads::Event {
            driver: Some(driver),
            wake,
        })
    }

    #[cfg(not(target_os = "linux"))]
    fn start_event_loop(
        _shared: &Arc<Shared>,
        _listener: TcpListener,
    ) -> io::Result<RuntimeThreads> {
        unreachable!("EventLoop is mapped to Threaded off-Linux before dispatch")
    }
}

/// The connection-driving threads, per runtime.
enum RuntimeThreads {
    Threaded {
        acceptor: Option<JoinHandle<()>>,
        conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
    },
    #[cfg(target_os = "linux")]
    Event {
        driver: Option<JoinHandle<()>>,
        wake: Arc<crate::poll::WakeFd>,
    },
}

/// Owns the running server: its address, its threads, and the shutdown
/// protocol. Dropping the handle shuts the server down (gracefully — see
/// [module docs](self)).
pub struct ServerHandle {
    local_addr: SocketAddr,
    shared: Arc<Shared>,
    threads: RuntimeThreads,
    worker_host: Option<JoinHandle<()>>,
    /// Token of the sigcache sweep subscription on the catalog; released
    /// on shutdown so the catalog does not keep calling into a dead
    /// server's cache.
    catalog_sub: u64,
}

impl std::fmt::Debug for ServerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerHandle")
            .field("local_addr", &self.local_addr)
            .field("stopping", &self.shared.stopping())
            .finish_non_exhaustive()
    }
}

impl ServerHandle {
    /// The bound address (resolves the port for `"…:0"` binds).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The catalog this server answers from (loads through this handle are
    /// visible to subsequent requests — same copy-on-write registry).
    pub fn catalog(&self) -> &Arc<ServeCatalog> {
        &self.shared.catalog
    }

    /// Whether shutdown has been initiated (locally or over the wire).
    pub fn is_stopping(&self) -> bool {
        self.shared.stopping()
    }

    /// The server's signature-map cache (hit/miss/invalidation counters
    /// via [`SigMapCache::stats`]).
    pub fn sig_cache(&self) -> &SigMapCache {
        &self.shared.sig_cache
    }

    /// Connection lifecycle counters: accepts and closes by typed reason
    /// (peer, protocol, backpressure, drain).
    pub fn conn_stats(&self) -> ConnStats {
        let c = &self.shared.conns;
        ConnStats {
            accepted: c.accepted.load(Ordering::Relaxed),
            closed_peer: c.closed_peer.load(Ordering::Relaxed),
            closed_protocol: c.closed_protocol.load(Ordering::Relaxed),
            closed_backpressure: c.closed_backpressure.load(Ordering::Relaxed),
            closed_drained: c.closed_drained.load(Ordering::Relaxed),
            closed_idle: c.closed_idle.load(Ordering::Relaxed),
            coalesced_frames: c.coalesced_frames.load(Ordering::Relaxed),
        }
    }

    /// Initiates graceful shutdown and blocks until every admitted request
    /// has been answered and all threads exited.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    /// Blocks until a wire `shutdown` request stops the server (the serve
    /// binary's main loop), then drains and joins like
    /// [`shutdown`](Self::shutdown).
    pub fn wait(mut self) {
        while !self.shared.stopping() {
            std::thread::sleep(self.shared.cfg.poll_interval);
        }
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        self.shared.catalog.unsubscribe(self.catalog_sub);
        // Join order is the drain order: stop admissions (the connection
        // runtime finishes or routes every in-flight request), close the
        // queue, let the workers drain it, join them.
        match &mut self.threads {
            RuntimeThreads::Threaded { acceptor, conns } => {
                if let Some(a) = acceptor.take() {
                    let _ = a.join();
                }
                let conns = std::mem::take(&mut *lock_recover(conns));
                for c in conns {
                    let _ = c.join();
                }
            }
            #[cfg(target_os = "linux")]
            RuntimeThreads::Event { driver, wake } => {
                wake.wake();
                if let Some(d) = driver.take() {
                    let _ = d.join();
                }
            }
        }
        drop(lock_recover(&self.shared.queue).take());
        if let Some(w) = self.worker_host.take() {
            let _ = w.join();
        }
    }

    fn joined(&self) -> bool {
        self.worker_host.is_none()
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if !self.joined() {
            self.stop_and_join();
        }
    }
}

// ---------------------------------------------------------------------------
// Threaded runtime: acceptor + one handler thread per connection

fn run_acceptor(
    shared: &Arc<Shared>,
    listener: &TcpListener,
    conns: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    loop {
        if shared.stopping() {
            return;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                shared.conns.accepted.fetch_add(1, Ordering::Relaxed);
                let shared = Arc::clone(shared);
                let handle = std::thread::Builder::new()
                    .name("ic-serve-conn".into())
                    .spawn(move || handle_conn(&shared, stream));
                match handle {
                    Ok(h) => lock_recover(conns).push(h),
                    Err(_) => { /* thread spawn failed; drop the connection */ }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(shared.cfg.poll_interval);
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => std::thread::sleep(shared.cfg.poll_interval),
        }
    }
}

fn send(stream: &mut TcpStream, resp: &Response) -> bool {
    write_frame(stream, &resp.encode()).is_ok()
}

fn handle_conn(shared: &Arc<Shared>, stream: TcpStream) {
    // The listener is non-blocking; make sure the accepted stream is not
    // (inheritance is platform-dependent), then poll via read timeouts so
    // the stop flag is observed within one interval.
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_read_timeout(Some(shared.cfg.poll_interval));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
    let _ = stream.set_nodelay(true);
    let Ok(mut writer) = stream.try_clone() else {
        return;
    };
    let mut reader = FrameReader::with_max_len(stream, shared.cfg.max_frame_len);
    let mut last_activity = Instant::now();

    loop {
        if shared.stopping() {
            return;
        }
        let payload = match reader.poll_frame() {
            Ok(None) => {
                // No complete frame this poll interval; shed the socket if
                // it has been silent past the configured idle timeout.
                if let Some(timeout) = shared.cfg.idle_timeout {
                    if last_activity.elapsed() >= timeout {
                        shared.conns.closed_idle.fetch_add(1, Ordering::Relaxed);
                        return;
                    }
                }
                continue;
            }
            Ok(Some(p)) => {
                last_activity = Instant::now();
                p
            }
            Err(FrameError::Closed) | Err(FrameError::Io(_)) | Err(FrameError::Truncated) => {
                shared.conns.closed_peer.fetch_add(1, Ordering::Relaxed);
                return;
            }
            Err(FrameError::TooLarge(n)) => {
                // The reader skips the oversized payload without buffering
                // it, so the connection survives: typed error, keep going.
                shared.errors.fetch_add(1, Ordering::Relaxed);
                if !send(&mut writer, &too_large(n)) {
                    shared.conns.closed_peer.fetch_add(1, Ordering::Relaxed);
                    return;
                }
                continue;
            }
            Err(e) => {
                // Framing is broken: one best-effort typed error, then
                // close — there is no way to find the next frame boundary.
                shared.errors.fetch_add(1, Ordering::Relaxed);
                shared.conns.closed_protocol.fetch_add(1, Ordering::Relaxed);
                send(
                    &mut writer,
                    &Response::Error {
                        id: 0,
                        code: ErrorCode::Malformed,
                        message: e.to_string(),
                    },
                );
                return;
            }
        };

        let resp = match Request::decode(&payload) {
            Err(err) => {
                // The frame layer is intact, so the connection can
                // continue; answer with a typed error, echoing the id if
                // one was parseable.
                shared.errors.fetch_add(1, Ordering::Relaxed);
                decode_error_response(&payload, &err)
            }
            Ok(req) => match classify(shared, req) {
                Action::Respond { resp, close } => {
                    let delivered = send(&mut writer, &resp);
                    if !delivered || close {
                        shared.conns.closed_drained.fetch_add(1, Ordering::Relaxed);
                        return;
                    }
                    continue;
                }
                Action::Admit {
                    id,
                    kind,
                    snapshot,
                    deadline,
                } => admit_and_wait(shared, id, kind, snapshot, deadline),
            },
        };
        if !send(&mut writer, &resp) {
            shared.conns.closed_peer.fetch_add(1, Ordering::Relaxed);
            return;
        }
    }
}

/// The typed response to an oversized declared frame length.
pub(crate) fn too_large(declared: usize) -> Response {
    Response::Error {
        id: 0,
        code: ErrorCode::BadFrame,
        message: format!("declared frame length of {declared} bytes exceeds the server's cap"),
    }
}

/// The typed response to an undecodable (but well-framed) payload.
pub(crate) fn decode_error_response(payload: &[u8], err: &DecodeError) -> Response {
    let code = match err {
        DecodeError::Syntax(_) => ErrorCode::Malformed,
        DecodeError::Shape(_) => ErrorCode::BadRequest,
    };
    Response::Error {
        id: salvage_id(payload),
        code,
        message: err.to_string(),
    }
}

/// Best-effort extraction of the `id` member from an undecodable payload.
fn salvage_id(payload: &[u8]) -> u64 {
    std::str::from_utf8(payload)
        .ok()
        .and_then(|text| crate::json::parse(text).ok())
        .and_then(|v| v.get("id").and_then(Json::as_u64))
        .unwrap_or(0)
}

// ---------------------------------------------------------------------------
// Request classification (shared by both runtimes)

/// What a decoded request requires of the runtime.
pub(crate) enum Action {
    /// Answer immediately (catalog requests and validation failures);
    /// `close` ends the connection after the response is delivered.
    Respond { resp: Response, close: bool },
    /// Submit to the worker queue (compare/search, names validated
    /// against `snapshot`, deadline stamped at admission).
    Admit {
        id: u64,
        kind: JobKind,
        snapshot: Arc<Snapshot>,
        deadline: Option<Instant>,
    },
}

/// Decodes one request into an [`Action`], updating the request/error
/// counters. Catalog requests are handled inline right here.
pub(crate) fn classify(shared: &Arc<Shared>, req: Request) -> Action {
    shared.requests.fetch_add(1, Ordering::Relaxed);
    let action = match req {
        Request::Load { id, name, dir } => {
            let resp = match shared
                .catalog
                .load_csv_dir(&name, std::path::Path::new(&dir))
            {
                Ok(tuples) => Response::Loaded {
                    id,
                    name,
                    tuples: tuples as u64,
                },
                Err(e) => Response::Error {
                    id,
                    code: match e {
                        CatalogError::SchemaMismatch { .. } => ErrorCode::SchemaMismatch,
                        _ => ErrorCode::Load,
                    },
                    message: e.to_string(),
                },
            };
            Action::Respond { resp, close: false }
        }
        Request::List { id } => {
            let snap = shared.catalog.snapshot();
            let instances = snap
                .names()
                .map(|name| {
                    let inst = snap.get(name).expect("name from this snapshot");
                    InstanceInfo {
                        name: name.to_string(),
                        tuples: inst.num_tuples() as u64,
                        null_cells: inst.num_null_cells() as u64,
                    }
                })
                .collect();
            Action::Respond {
                resp: Response::Listing { id, instances },
                close: false,
            }
        }
        Request::Patch { id, name, ops } => Action::Respond {
            resp: run_patch(shared, id, name, ops),
            close: false,
        },
        Request::Stats { id } => Action::Respond {
            resp: Response::Stats {
                id,
                stats: collect_stats(shared),
            },
            close: false,
        },
        Request::Shutdown { id } => {
            shared.stop.store(true, Ordering::Release);
            Action::Respond {
                resp: Response::ShuttingDown { id },
                close: true,
            }
        }
        Request::Compare {
            id,
            left,
            right,
            algo,
            lambda,
            budget_ms,
        } => {
            let snapshot = shared.catalog.snapshot();
            if let Some(name) = [&left, &right]
                .into_iter()
                .find(|n| snapshot.get(n).is_none())
            {
                return error_action(shared, unknown_instance(id, name));
            }
            Action::Admit {
                id,
                kind: JobKind::Compare {
                    left,
                    right,
                    algo,
                    lambda,
                },
                snapshot,
                deadline: stamp_deadline(shared, budget_ms),
            }
        }
        Request::Search {
            id,
            query,
            k,
            lambda,
            budget_ms,
        } => {
            let snapshot = shared.catalog.snapshot();
            if snapshot.get(&query).is_none() {
                return error_action(shared, unknown_instance(id, &query));
            }
            if k == 0 {
                return error_action(
                    shared,
                    Response::Error {
                        id,
                        code: ErrorCode::BadRequest,
                        message: "search k must be at least 1".into(),
                    },
                );
            }
            Action::Admit {
                id,
                kind: JobKind::Search {
                    query,
                    k: k.min(usize::MAX as u64) as usize,
                    lambda,
                },
                snapshot,
                deadline: stamp_deadline(shared, budget_ms),
            }
        }
        Request::Discover {
            id,
            name,
            epsilon,
            max_lhs,
            min_support,
            budget_ms,
        } => {
            let snapshot = shared.catalog.snapshot();
            if snapshot.get(&name).is_none() {
                return error_action(shared, unknown_instance(id, &name));
            }
            Action::Admit {
                id,
                kind: JobKind::Discover {
                    name,
                    epsilon,
                    max_lhs,
                    min_support,
                },
                snapshot,
                deadline: stamp_deadline(shared, budget_ms),
            }
        }
    };
    if let Action::Respond {
        resp: Response::Error { .. },
        ..
    } = &action
    {
        shared.errors.fetch_add(1, Ordering::Relaxed);
    }
    action
}

fn error_action(shared: &Arc<Shared>, resp: Response) -> Action {
    shared.errors.fetch_add(1, Ordering::Relaxed);
    Action::Respond { resp, close: false }
}

/// A wire patch op with schema references resolved but values still
/// symbolic — interning happens inside the catalog mutation so the new
/// constants and nulls are captured (and WAL-logged) with the op.
enum ResolvedPatchOp {
    Insert {
        rel: RelId,
        values: Vec<PatchValue>,
    },
    Delete {
        id: TupleId,
    },
    Modify {
        id: TupleId,
        attr: AttrId,
        value: PatchValue,
    },
}

/// Handles a `patch` request inline (it is a catalog mutation, like
/// `load`): resolves the wire ops against the schema, applies them through
/// [`ServeCatalog::patch`] — one copy-on-write publish, WAL-logged when
/// durable — and migrates any cached signature maps to the new pin by
/// incremental repair instead of letting the next compare rebuild them.
fn run_patch(shared: &Shared, id: u64, name: String, ops: Vec<PatchOp>) -> Response {
    let bad_request = |message: String| Response::Error {
        id,
        code: ErrorCode::BadRequest,
        message,
    };

    // Resolve schema references against the current snapshot. The schema
    // never changes after construction, so these resolutions cannot be
    // invalidated by a concurrent mutation; tuple-level races (a tuple
    // deleted between here and the apply) surface as `delta` errors from
    // the atomic application below.
    let pre = shared.catalog.snapshot();
    let Some(old_pin) = pre.get(&name).cloned() else {
        return unknown_instance(id, &name);
    };
    let schema = pre.catalog.schema();
    let nulls_bound = pre.catalog.nulls_allocated();
    let mut resolved = Vec::with_capacity(ops.len());
    for op in ops {
        let check_value = |v: &PatchValue| match v {
            PatchValue::Null(n) if *n >= nulls_bound => Some(bad_request(format!(
                "null reference {n} is outside the catalog's allocated nulls ({nulls_bound})"
            ))),
            _ => None,
        };
        match op {
            PatchOp::Insert { rel, values } => {
                let Some(rid) = schema.rel(&rel) else {
                    return bad_request(format!("unknown relation {rel:?}"));
                };
                let arity = schema.relation(rid).arity();
                if values.len() != arity {
                    return bad_request(format!(
                        "relation {rel:?} has arity {arity}, insert carries {} values",
                        values.len()
                    ));
                }
                if let Some(resp) = values.iter().find_map(check_value) {
                    return resp;
                }
                resolved.push(ResolvedPatchOp::Insert { rel: rid, values });
            }
            PatchOp::Delete { tuple } => {
                resolved.push(ResolvedPatchOp::Delete { id: TupleId(tuple) });
            }
            PatchOp::Modify { tuple, attr, value } => {
                let attr = match attr {
                    AttrRef::Index(i) => AttrId(i),
                    AttrRef::Name(n) => {
                        // Name resolution needs the tuple's relation; an
                        // unknown tuple becomes a `delta` error either way.
                        let Some(rid) = old_pin.rel_of(TupleId(tuple)) else {
                            return Response::Error {
                                id,
                                code: ErrorCode::Delta,
                                message: format!("no tuple with id {tuple} in {name:?}"),
                            };
                        };
                        match schema.relation(rid).attr(&n) {
                            Some(a) => a,
                            None => {
                                return bad_request(format!(
                                    "relation {:?} has no attribute {n:?}",
                                    schema.relation(rid).name()
                                ))
                            }
                        }
                    }
                };
                if let Some(resp) = check_value(&value) {
                    return resp;
                }
                resolved.push(ResolvedPatchOp::Modify {
                    id: TupleId(tuple),
                    attr,
                    value,
                });
            }
        }
    }

    // Pin the old signature maps *before* the mutation publishes: the
    // catalog-subscription sweep evicts the old entry the instant the
    // patched pin replaces it.
    let old_maps = shared.sig_cache.lookup(&name, &old_pin);

    let mut applied_delta = None;
    let outcome = shared.catalog.patch(&name, |catalog| {
        let delta = Delta::new(
            resolved
                .into_iter()
                .map(|op| match op {
                    ResolvedPatchOp::Insert { rel, values } => DeltaOp::Insert {
                        rel,
                        values: values.iter().map(|v| wire_value(catalog, v)).collect(),
                    },
                    ResolvedPatchOp::Delete { id } => DeltaOp::Delete { id },
                    ResolvedPatchOp::Modify { id, attr, value } => DeltaOp::Modify {
                        id,
                        attr,
                        value: wire_value(catalog, &value),
                    },
                })
                .collect(),
        );
        applied_delta = Some(delta.clone());
        Ok(delta)
    });
    let outcome = match outcome {
        Ok(outcome) => outcome,
        Err(e) => {
            let code = match &e {
                CatalogError::UnknownInstance { .. } => ErrorCode::UnknownInstance,
                CatalogError::Delta { .. } => ErrorCode::Delta,
                _ => ErrorCode::Internal,
            };
            return Response::Error {
                id,
                code,
                message: e.to_string(),
            };
        }
    };

    let new_pin = outcome
        .instance
        .expect("a successful patch always returns the new pin");
    // Migrate cached signature maps to the new pin by replaying the delta
    // with incremental repair — bit-identical to a rebuild, at O(|delta|)
    // instead of O(instance). Only when no other mutation slipped in
    // between our snapshot and the patch (version advanced by exactly
    // one): otherwise `old_pin` may not be the instance the patch applied
    // to, and repaired maps would silently describe the wrong tuples.
    let no_race = outcome.version == pre.version + 1;
    if let (true, Some(old_maps), Some(delta)) = (no_race, old_maps, &applied_delta) {
        let mut inst = Instance::clone(&old_pin);
        let mut maps = ic_core::InstanceSigMaps::clone(&old_maps);
        if apply_delta_repairing(&mut inst, Some(&mut maps), delta).is_ok() {
            shared
                .sig_cache
                .store(&name, Arc::clone(&new_pin), Arc::new(maps));
        }
    }

    Response::Patched {
        id,
        name,
        tuples: new_pin.num_tuples() as u64,
        inserted: outcome.inserted.iter().map(|t| t.0 as u64).collect(),
    }
}

/// Interns one wire patch value into the mutation's catalog copy.
fn wire_value(catalog: &mut ic_model::Catalog, v: &PatchValue) -> Value {
    match v {
        PatchValue::Const(s) => catalog.konst(s),
        PatchValue::FreshNull => catalog.fresh_null(),
        PatchValue::Null(n) => Value::Null(NullId(*n)),
    }
}

fn stamp_deadline(shared: &Shared, budget_ms: Option<u64>) -> Option<Instant> {
    budget_ms
        .map(Duration::from_millis)
        .or(shared.cfg.default_budget)
        .map(|b| Instant::now() + b)
}

fn unknown_instance(id: u64, name: &str) -> Response {
    Response::Error {
        id,
        code: ErrorCode::UnknownInstance,
        message: format!("no instance named {name:?} in the catalog"),
    }
}

fn collect_stats(shared: &Shared) -> ServerStats {
    let spans = shared
        .stats_sink
        .snapshot()
        .into_iter()
        .map(|(label, s)| SpanStat {
            label,
            reports: s.reports,
            wall_us: s.wall.as_micros() as u64,
        })
        .collect();
    ServerStats {
        requests: shared.requests.load(Ordering::Relaxed),
        completed: shared.completed.load(Ordering::Relaxed),
        overloaded: shared.overloaded.load(Ordering::Relaxed),
        errors: shared.errors.load(Ordering::Relaxed),
        catalog_version: shared.catalog.version(),
        spans,
    }
}

/// The typed `overloaded` rejection for a full queue.
pub(crate) fn overloaded_response(shared: &Shared, id: u64) -> Response {
    shared.overloaded.fetch_add(1, Ordering::Relaxed);
    shared.errors.fetch_add(1, Ordering::Relaxed);
    Response::Error {
        id,
        code: ErrorCode::Overloaded,
        message: format!(
            "request queue full ({} slots); retry later",
            shared.cfg.queue_depth
        ),
    }
}

/// The typed rejection once the queue has closed for shutdown.
pub(crate) fn shutting_down_response(id: u64) -> Response {
    Response::Error {
        id,
        code: ErrorCode::ShuttingDown,
        message: "server is shutting down".into(),
    }
}

/// Threaded-runtime admission: try the bounded queue, block this
/// connection's thread for the worker's reply.
fn admit_and_wait(
    shared: &Arc<Shared>,
    id: u64,
    kind: JobKind,
    snapshot: Arc<Snapshot>,
    deadline: Option<Instant>,
) -> Response {
    let (reply_tx, reply_rx) = std::sync::mpsc::channel();
    let job = Job {
        id,
        kind,
        snapshot,
        deadline,
        reply: ReplyTo::Channel(reply_tx),
    };

    let sender = lock_recover(&shared.queue).clone();
    let Some(sender) = sender else {
        return shutting_down_response(id);
    };
    match sender.try_send(job) {
        Ok(()) => match reply_rx.recv() {
            Ok(resp) => resp,
            Err(_) => Response::Error {
                id,
                code: ErrorCode::Internal,
                message: "worker dropped the request".into(),
            },
        },
        Err(TrySendError::Full(_)) => overloaded_response(shared, id),
        Err(TrySendError::Disconnected(_)) => shutting_down_response(id),
    }
}

// ---------------------------------------------------------------------------
// Workers

/// Runs `cfg.workers` worker loops inside one `ic_pool` scope; returns when
/// the queue sender is dropped (shutdown) *and* every queued job drained.
fn run_workers(shared: &Arc<Shared>, rx: &Arc<Mutex<Receiver<Job>>>) {
    let workers = shared.cfg.workers.max(1);
    ic_pool::with_threads(workers, || {
        ic_pool::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| worker_loop(shared, rx));
            }
        })
    });
}

fn worker_loop(shared: &Shared, rx: &Mutex<Receiver<Job>>) {
    loop {
        // The guard is dropped as soon as `recv` returns: jobs are handed
        // out one at a time but *processed* concurrently.
        let job = lock_recover(rx).recv();
        match job {
            Ok(job) => process_job(shared, job),
            Err(_) => return, // queue closed and drained
        }
    }
}

fn process_job(shared: &Shared, job: Job) {
    if let Some(delay) = shared.cfg.worker_delay {
        std::thread::sleep(delay);
    }
    // Deadline check before any engine work: a request that starved in the
    // queue past its budget (or asked for `budget_ms: 0`) gets a typed
    // `budget` error, never a hang and never a silent partial answer.
    let now = Instant::now();
    let remaining = match job.deadline {
        Some(deadline) => match deadline.checked_duration_since(now) {
            Some(r) if !r.is_zero() => Some(r),
            _ => {
                shared.errors.fetch_add(1, Ordering::Relaxed);
                job.reply.send(Response::Error {
                    id: job.id,
                    code: ErrorCode::Budget,
                    message: "deadline expired before processing began".into(),
                });
                return;
            }
        },
        None => None,
    };

    // Fault isolation: a panic anywhere in one request — the engine, an
    // observation sink — is converted into a typed `internal` error for
    // *that* request. The worker thread survives, and every mutex it might
    // have poisoned is recovered by `lock_recover`, so subsequent requests
    // are unaffected.
    let resp = catch_unwind(AssertUnwindSafe(|| run_job(shared, &job, remaining))).unwrap_or_else(
        |panic| Response::Error {
            id: job.id,
            code: ErrorCode::Internal,
            message: format!("request processing panicked: {}", panic_message(&panic)),
        },
    );
    if matches!(
        resp,
        Response::Compared { .. } | Response::Searched { .. } | Response::Discovered { .. }
    ) {
        shared.completed.fetch_add(1, Ordering::Relaxed);
    } else {
        shared.errors.fetch_add(1, Ordering::Relaxed);
    }
    job.reply.send(resp);
}

fn panic_message(panic: &Box<dyn std::any::Any + Send>) -> &str {
    if let Some(s) = panic.downcast_ref::<&str>() {
        s
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s
    } else {
        "non-string panic payload"
    }
}

fn run_job(shared: &Shared, job: &Job, remaining: Option<Duration>) -> Response {
    match &job.kind {
        JobKind::Compare {
            left,
            right,
            algo,
            lambda,
        } => run_compare(shared, job, left, right, *algo, *lambda, remaining),
        JobKind::Search { query, k, lambda } => run_search(shared, job, query, *k, *lambda),
        JobKind::Discover {
            name,
            epsilon,
            max_lhs,
            min_support,
        } => run_discover(
            shared,
            job,
            name,
            *epsilon,
            *max_lhs,
            *min_support,
            remaining,
        ),
    }
}

fn run_compare(
    shared: &Shared,
    job: &Job,
    left_name: &str,
    right_name: &str,
    algo: Algo,
    lambda: Option<f64>,
    remaining: Option<Duration>,
) -> Response {
    // Per-request observability: one observation per compare, aggregated
    // by label in the StatsSink and exported through `stats`.
    let _obs = ic_obs::observe(COMPARE_LABEL, shared.job_sink());

    let (Some(left), Some(right)) = (job.snapshot.get(left_name), job.snapshot.get(right_name))
    else {
        // Unreachable in practice: admission validated against this very
        // snapshot. Kept as a typed error rather than a panic.
        return Response::Error {
            id: job.id,
            code: ErrorCode::UnknownInstance,
            message: "instance vanished from the admitted snapshot".into(),
        };
    };

    let mut builder = Comparator::new(&job.snapshot.catalog);
    if let Some(lambda) = lambda {
        builder = builder.lambda(lambda);
    }
    if let Some(budget) = remaining {
        builder = builder.budget(budget);
    }
    let cmp = match builder.build() {
        Ok(cmp) => cmp,
        Err(e) => return core_error(job.id, &e),
    };

    let start = Instant::now();
    let scores = match algo {
        Algo::Signature => {
            // Reuse (and, when unbudgeted, populate) the server's sigmap
            // cache. Seeding is bit-identical to building per request, so
            // this only changes wall-clock, never scores. Budgeted
            // requests still *use* cached maps but never pay for a build
            // they would account against the deadline.
            let mut seeds: [Option<Arc<ic_core::InstanceSigMaps>>; 2] = [None, None];
            for (slot, (name, inst)) in seeds
                .iter_mut()
                .zip([(left_name, left), (right_name, right)])
            {
                *slot = shared.sig_cache.lookup(name, inst);
                if slot.is_none() && remaining.is_none() {
                    match cmp.build_maps(inst) {
                        Ok(maps) => {
                            let maps = Arc::new(maps);
                            shared
                                .sig_cache
                                .store(name, Arc::clone(inst), Arc::clone(&maps));
                            *slot = Some(maps);
                        }
                        Err(e) => return core_error(job.id, &e),
                    }
                }
            }
            let [lm, rm] = seeds;
            match cmp.signature_with_maps(left, right, lm.as_deref(), rm.as_deref()) {
                Ok(out) if out.timed_out => {
                    return core_error(
                        job.id,
                        &ic_core::Error::Budget {
                            budget: remaining,
                            elapsed: out.elapsed,
                        },
                    )
                }
                Ok(out) => CompareScores {
                    signature: Some(out.best.score()),
                    exact: None,
                    pairs: Some(out.best.pairs.len() as u64),
                    optimal: None,
                    elapsed_us: start.elapsed().as_micros() as u64,
                },
                Err(e) => return core_error(job.id, &e),
            }
        }
        Algo::Exact => match cmp.exact_strict(left, right) {
            Ok(out) => CompareScores {
                signature: None,
                exact: Some(out.best.score()),
                pairs: None,
                optimal: Some(out.optimal),
                elapsed_us: start.elapsed().as_micros() as u64,
            },
            Err(e) => return core_error(job.id, &e),
        },
        Algo::Both => match cmp.both(left, right) {
            Ok((exact, sig)) => {
                if sig.timed_out || !exact.optimal {
                    return core_error(
                        job.id,
                        &ic_core::Error::Budget {
                            budget: remaining,
                            elapsed: start.elapsed(),
                        },
                    );
                }
                CompareScores {
                    signature: Some(sig.best.score()),
                    exact: Some(exact.best.score()),
                    pairs: Some(sig.best.pairs.len() as u64),
                    optimal: Some(exact.optimal),
                    elapsed_us: start.elapsed().as_micros() as u64,
                }
            }
            Err(e) => return core_error(job.id, &e),
        },
    };
    Response::Compared { id: job.id, scores }
}

/// Brings the prefilter index up to date with `snap`. The version guard
/// serialises *sync work* (so concurrent searches over the same new
/// snapshot build each entry once) while `topk` lookups stay concurrent on
/// the index's own segment locks.
fn ensure_index_synced(shared: &Shared, snap: &Snapshot) {
    // A snapshot holding any instance has version ≥ 1 (mutations bump it),
    // and version 0 means empty on both sides — so `>=` is safe.
    let mut synced = lock_recover(&shared.index_version);
    if *synced >= snap.version {
        return;
    }
    shared.index.sync(snap.iter());
    *synced = snap.version;
}

fn run_search(
    shared: &Shared,
    job: &Job,
    query_name: &str,
    k: usize,
    lambda: Option<f64>,
) -> Response {
    let _obs = ic_obs::observe(SEARCH_LABEL, shared.job_sink());

    let Some(query) = job.snapshot.get(query_name) else {
        return Response::Error {
            id: job.id,
            code: ErrorCode::UnknownInstance,
            message: "query vanished from the admitted snapshot".into(),
        };
    };

    ensure_index_synced(shared, &job.snapshot);

    // The comparator carries **no** budget: every score a search returns
    // is exact and bit-identical to a direct unbudgeted `compare`. The
    // request deadline is enforced between comparisons by `topk` itself —
    // exceeding it fails the whole request with `budget` rather than
    // silently returning a truncated ranking.
    let mut builder = Comparator::new(&job.snapshot.catalog);
    if let Some(lambda) = lambda {
        builder = builder.lambda(lambda);
    }
    let cmp = match builder.build() {
        Ok(cmp) => cmp,
        Err(e) => return core_error(job.id, &e),
    };

    let opts = SearchOptions {
        deadline: job.deadline,
        ..SearchOptions::default()
    };
    let start = Instant::now();
    match shared.index.topk(query, k, &cmp, &opts) {
        Ok(out) => Response::Searched {
            id: job.id,
            results: SearchResults {
                hits: out
                    .hits
                    .into_iter()
                    .map(|h| SearchResult {
                        name: h.name,
                        score: h.score,
                        pairs: h.pairs as u64,
                    })
                    .collect(),
                compared: out.compared as u64,
                total: out.total as u64,
                elapsed_us: start.elapsed().as_micros() as u64,
            },
        },
        Err(e) => core_error(job.id, &e),
    }
}

fn run_discover(
    shared: &Shared,
    job: &Job,
    name: &str,
    epsilon: Option<f64>,
    max_lhs: Option<u64>,
    min_support: Option<u64>,
    remaining: Option<Duration>,
) -> Response {
    let _obs = ic_obs::observe(DISCOVER_LABEL, shared.job_sink());

    let Some(instance) = job.snapshot.get(name) else {
        return Response::Error {
            id: job.id,
            code: ErrorCode::UnknownInstance,
            message: "instance vanished from the admitted snapshot".into(),
        };
    };

    // Request knobs override the library defaults field by field; the
    // config's own validation turns a bad epsilon into a typed `config`
    // error, and the admission deadline becomes the discovery budget so
    // exhaustion surfaces as `budget`, never a truncated constraint list.
    let defaults = ic_discovery::DiscoveryConfig::default();
    let cfg = ic_discovery::DiscoveryConfig {
        epsilon: epsilon.unwrap_or(defaults.epsilon),
        max_lhs: max_lhs.map_or(defaults.max_lhs, |m| m.min(usize::MAX as u64) as usize),
        min_support: min_support
            .map_or(defaults.min_support, |s| s.min(usize::MAX as u64) as usize),
        budget: remaining,
        ..defaults
    };

    let start = Instant::now();
    match ic_discovery::discover(instance, &job.snapshot.catalog, &cfg) {
        Ok(found) => {
            let schema = job.snapshot.catalog.schema();
            let attr = |rel: RelId, a: AttrId| schema.relation(rel).attr_name(a).to_string();
            Response::Discovered {
                id: job.id,
                fds: found
                    .fds
                    .iter()
                    .map(|fd| DiscoveredFdInfo {
                        rel: schema.relation(fd.rel).name().to_string(),
                        lhs: fd.lhs.iter().map(|&a| attr(fd.rel, a)).collect(),
                        rhs: attr(fd.rel, fd.rhs),
                        g3_min: fd.g3.g3_min,
                        g3_max: fd.g3.g3_max,
                        support: fd.support as u64,
                    })
                    .collect(),
                keys: found
                    .keys
                    .iter()
                    .map(|k| DiscoveredKeyInfo {
                        rel: schema.relation(k.rel).name().to_string(),
                        attrs: k.attrs.iter().map(|&a| attr(k.rel, a)).collect(),
                        g3_min: k.g3.g3_min,
                        g3_max: k.g3.g3_max,
                        covered: k.covered as u64,
                    })
                    .collect(),
                elapsed_us: start.elapsed().as_micros() as u64,
            }
        }
        Err(e) => core_error(job.id, &e),
    }
}

fn core_error(id: u64, e: &ic_core::Error) -> Response {
    Response::Error {
        id,
        code: ErrorCode::from_core(e),
        message: e.to_string(),
    }
}
