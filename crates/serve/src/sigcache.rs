//! Server-side signature-map cache: amortizes the per-instance sigmap
//! build across `compare` requests that keep hitting the same catalog
//! entries.
//!
//! The catalog is copy-on-write ([`crate::catalog::ServeCatalog`]): a
//! `load` that replaces an instance produces a *new* [`Arc<Instance>`] in
//! the next snapshot, while older snapshots keep the old one alive. That
//! makes the correct invalidation rule a single pointer comparison —
//! [`SigMapCache::lookup`] returns a cached map only while its pinned
//! `Arc<Instance>` is **the same allocation** the request's snapshot
//! resolves, so a replaced instance can never be served with the stale
//! index (the stale entry is dropped and counted as an invalidation).
//!
//! Maps are built without a deadline and reused by every worker; under the
//! seeding contract of [`ic_core::signature_match_seeded`] the scores are
//! bit-identical to building from scratch per request.
//!
//! Pointer-identity invalidation alone is **lazy**: it only fires when a
//! stale name is looked up again. An instance *removed* from the catalog
//! is never looked up again, so its entry — maps plus the pinned
//! `Arc<Instance>` keeping the whole instance alive — would leak forever.
//! [`SigMapCache::sweep`] is the removal-driven complement: given a fresh
//! snapshot it drops every entry whose name is gone or whose pin no longer
//! matches, counted as evictions. The server runs it from a
//! [`crate::catalog::ServeCatalog::subscribe`] hook on every mutation.

use crate::catalog::Snapshot;
use crate::lockutil::lock_recover;
use ic_core::InstanceSigMaps;
use ic_model::Instance;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Monotonic counters describing a [`SigMapCache`]'s effectiveness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SigCacheStats {
    /// Lookups answered from the cache (same instance pointer).
    pub hits: u64,
    /// Lookups for a name with no cached entry.
    pub misses: u64,
    /// Cached entries dropped because the catalog instance was replaced.
    pub invalidations: u64,
    /// Entries dropped by removal-driven eviction ([`SigMapCache::evict`]
    /// and [`SigMapCache::sweep`]) — without it, removed catalog entries
    /// would stay pinned in the cache forever.
    pub evictions: u64,
}

/// A name → (instance pin, signature maps) cache shared by the server's
/// workers. See the [module docs](self) for the invalidation rule.
#[derive(Debug, Default)]
pub struct SigMapCache {
    inner: Mutex<HashMap<String, (Arc<Instance>, Arc<InstanceSigMaps>)>>,
    hits: AtomicU64,
    misses: AtomicU64,
    invalidations: AtomicU64,
    evictions: AtomicU64,
}

impl SigMapCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the cached maps for `name` if they were built for exactly
    /// the instance `current` (pointer identity). A stale entry — the
    /// catalog has since replaced the instance — is removed and counted
    /// as an invalidation.
    pub fn lookup(&self, name: &str, current: &Arc<Instance>) -> Option<Arc<InstanceSigMaps>> {
        let mut inner = lock_recover(&self.inner);
        match inner.get(name) {
            Some((pinned, maps)) if Arc::ptr_eq(pinned, current) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(maps))
            }
            Some(_) => {
                inner.remove(name);
                self.invalidations.fetch_add(1, Ordering::Relaxed);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Stores `maps` for `name`, pinned to the instance they were built
    /// from. Racing workers may both build after a miss; last store wins —
    /// both maps are correct for the same pinned instance.
    pub fn store(&self, name: &str, instance: Arc<Instance>, maps: Arc<InstanceSigMaps>) {
        lock_recover(&self.inner).insert(name.to_string(), (instance, maps));
    }

    /// Drops the entry for `name`, if any; returns whether one existed.
    /// Counted as an eviction.
    pub fn evict(&self, name: &str) -> bool {
        let existed = lock_recover(&self.inner).remove(name).is_some();
        if existed {
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        existed
    }

    /// Drops every entry that `snapshot` no longer backs: the name is gone
    /// from the catalog, or the catalog now holds a different instance
    /// under it (the pin no longer matches by pointer). Returns the number
    /// of entries dropped; each counts as an eviction.
    ///
    /// This is what keeps the cache from leaking removed instances —
    /// `lookup` only ever invalidates names that are still being asked
    /// for.
    pub fn sweep(&self, snapshot: &Snapshot) -> usize {
        let mut inner = lock_recover(&self.inner);
        let before = inner.len();
        inner.retain(|name, (pinned, _)| {
            snapshot
                .get(name)
                .is_some_and(|current| Arc::ptr_eq(current, pinned))
        });
        let dropped = before - inner.len();
        self.evictions.fetch_add(dropped as u64, Ordering::Relaxed);
        dropped
    }

    /// Number of entries currently cached.
    pub fn len(&self) -> usize {
        lock_recover(&self.inner).len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        lock_recover(&self.inner).is_empty()
    }

    /// A snapshot of the hit/miss/invalidation/eviction counters.
    pub fn stats(&self) -> SigCacheStats {
        SigCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ic_core::SignatureConfig;
    use ic_model::{Catalog, RelId, Schema};

    fn instance(cat: &mut Catalog, rows: &[&str]) -> Arc<Instance> {
        let mut inst = Instance::new("t", cat);
        for &a in rows {
            let v = cat.konst(a);
            inst.insert(RelId(0), vec![v]);
        }
        Arc::new(inst)
    }

    #[test]
    fn hit_miss_and_invalidation_counters() {
        let mut cat = Catalog::new(Schema::single("R", &["A"]));
        let v1 = instance(&mut cat, &["a", "b"]);
        let v2 = instance(&mut cat, &["a", "c"]);
        let cfg = SignatureConfig::default();
        let cache = SigMapCache::new();

        assert!(cache.lookup("x", &v1).is_none()); // miss
        cache.store(
            "x",
            Arc::clone(&v1),
            Arc::new(InstanceSigMaps::build(&v1, &cfg)),
        );
        assert!(cache.lookup("x", &v1).is_some()); // hit
        assert_eq!(cache.len(), 1);

        // Same name, replaced instance: stale entry dropped.
        assert!(cache.lookup("x", &v2).is_none());
        assert!(cache.is_empty());
        assert_eq!(
            cache.stats(),
            SigCacheStats {
                hits: 1,
                misses: 2,
                invalidations: 1,
                evictions: 0,
            }
        );
    }

    #[test]
    fn sweep_drops_removed_and_replaced_entries() {
        use crate::catalog::ServeCatalog;

        let sc = ServeCatalog::new(Schema::single("R", &["A"]));
        for name in ["keep", "gone", "replaced"] {
            sc.register_with(name, |cat| {
                let mut inst = Instance::new(name, cat);
                let v = cat.konst(name);
                inst.insert(RelId(0), vec![v]);
                Ok(inst)
            })
            .unwrap();
        }

        let cfg = SignatureConfig::default();
        let cache = SigMapCache::new();
        let snap = sc.snapshot();
        for (name, pin) in snap.iter() {
            cache.store(
                name,
                Arc::clone(pin),
                Arc::new(InstanceSigMaps::build(pin, &cfg)),
            );
        }
        assert_eq!(cache.len(), 3);

        sc.remove("gone");
        sc.register_with("replaced", |cat| {
            let mut inst = Instance::new("replaced", cat);
            let v = cat.konst("other");
            inst.insert(RelId(0), vec![v]);
            Ok(inst)
        })
        .unwrap();

        let dropped = cache.sweep(&sc.snapshot());
        assert_eq!(dropped, 2, "one removed + one replaced entry");
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.stats().evictions, 2);
        // The surviving entry still answers for its live pin.
        let snap = sc.snapshot();
        assert!(cache.lookup("keep", snap.get("keep").unwrap()).is_some());

        assert!(cache.evict("keep"));
        assert!(!cache.evict("keep"));
        assert!(cache.is_empty());
        assert_eq!(cache.stats().evictions, 3);
    }
}
