//! Durability acceptance tests for the op-based catalog (`DESIGN.md` §11):
//!
//! * the crash-recovery property — a WAL truncated at *every* byte
//!   boundary of its final record recovers to the pre-crash catalog minus
//!   at most the torn op, with bit-identical compare scores after reload;
//! * the wire `patch` request — scores flip, and the repaired signature
//!   maps migrate to the patched instance instead of being rebuilt;
//! * idle-timeout shedding in both connection runtimes;
//! * a full process restart of the `serve` binary with `--data-dir`.

use ic_core::{Comparator, Delta, DeltaOp};
use ic_model::{AttrId, Catalog, Instance, RelId, Schema, TupleId};
use ic_serve::{
    Algo, AttrRef, Client, CompareOptions, ErrorCode, PatchOp, PatchValue, Runtime, ServeCatalog,
    Server, ServerConfig,
};
use ic_store::MemStorage;
use std::io::Read;
use std::net::TcpStream;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

fn schema() -> Schema {
    Schema::single("R", &["A", "B"])
}

/// Registers a two-attribute instance with the given constant rows.
fn register_rows(catalog: &ServeCatalog, name: &str, rows: &[(&str, &str)]) {
    let rows: Vec<(String, String)> = rows
        .iter()
        .map(|(a, b)| (a.to_string(), b.to_string()))
        .collect();
    catalog
        .register_with(name, move |cat: &mut Catalog| {
            let mut inst = Instance::new(name, cat);
            for (a, b) in &rows {
                let (a, b) = (cat.konst(a), cat.konst(b));
                inst.insert(RelId(0), vec![a, b]);
            }
            Ok(inst)
        })
        .unwrap();
}

/// A deterministic, complete dump of catalog state: version, every
/// instance's tuples (ids and cell values), the value domains, and the
/// exact bits of a signature score between the two named instances.
/// Equal strings ⇔ equal recovered state.
fn fingerprint(catalog: &ServeCatalog, left: &str, right: &str) -> String {
    let snap = catalog.snapshot();
    let dump: Vec<String> = snap
        .iter()
        .map(|(name, inst)| {
            let rows: Vec<String> = inst
                .iter_all()
                .map(|(rel, t)| format!("{}#{}{:?}", rel.0, t.id().0, t.values()))
                .collect();
            format!("{name}=[{}]", rows.join(";"))
        })
        .collect();
    let cmp = Comparator::new(&snap.catalog).build().unwrap();
    let score = cmp
        .signature(snap.get(left).unwrap(), snap.get(right).unwrap())
        .unwrap()
        .best
        .score();
    format!(
        "v{} syms{} nulls{} score{:016x} {}",
        snap.version,
        snap.catalog.interner().len(),
        snap.catalog.nulls_allocated(),
        score.to_bits(),
        dump.join(" ")
    )
}

fn reopen(snapshot: Option<Vec<u8>>, wal: Vec<u8>) -> ServeCatalog {
    ServeCatalog::durable(schema(), Box::new(MemStorage::from_parts(snapshot, wal)))
        .expect("recovery must tolerate a torn WAL tail")
}

/// The crash-recovery property: for every byte boundary `cut` inside the
/// final WAL record, reopening from `wal[..cut]` recovers exactly the
/// pre-crash catalog minus the torn op — never an error, never a
/// corrupted hybrid — and the full WAL recovers the complete state. The
/// comparison includes compare-score bits, so recovery is checked down to
/// interner and null-id identity. (CI runs this suite at
/// `IC_POOL_THREADS=1` and `=4`.)
#[test]
fn recovery_survives_wal_truncation_at_every_byte() {
    let store = Arc::new(Mutex::new(MemStorage::new()));
    let catalog = ServeCatalog::durable(schema(), Box::new(Arc::clone(&store))).unwrap();

    register_rows(&catalog, "a", &[("x", "y"), ("z", "y")]);
    register_rows(&catalog, "b", &[("x", "y")]);
    register_rows(&catalog, "doomed", &[("q", "q")]);
    catalog
        .patch("a", |cat| {
            let (w, y) = (cat.konst("w"), cat.konst("y"));
            Ok(Delta::new(vec![
                DeltaOp::Insert {
                    rel: RelId(0),
                    values: vec![w, y],
                },
                DeltaOp::Modify {
                    id: TupleId(0),
                    attr: AttrId(0),
                    value: cat.fresh_null(),
                },
            ]))
        })
        .unwrap();
    assert!(catalog.remove("doomed"));

    let snapshot = store.lock().unwrap().snapshot_bytes().map(<[u8]>::to_vec);
    let wal_before = store.lock().unwrap().wal_bytes().to_vec();

    // The final op: a patch minting two new dictionary strings and a
    // fresh labeled null, so the torn record carries a rich domain delta.
    catalog
        .patch("b", |cat| {
            let (p, q) = (cat.konst("pp"), cat.konst("qq"));
            let n = cat.fresh_null();
            Ok(Delta::new(vec![
                DeltaOp::Insert {
                    rel: RelId(0),
                    values: vec![p, n],
                },
                DeltaOp::Modify {
                    id: TupleId(0),
                    attr: AttrId(1),
                    value: q,
                },
            ]))
        })
        .unwrap();
    let wal_after = store.lock().unwrap().wal_bytes().to_vec();
    assert!(wal_after.len() > wal_before.len(), "final op must append");

    let full = fingerprint(&catalog, "a", "b");
    let minus_final = fingerprint(&reopen(snapshot.clone(), wal_before.clone()), "a", "b");
    assert_ne!(full, minus_final, "the final op must change the state");

    for cut in wal_before.len()..=wal_after.len() {
        let recovered = reopen(snapshot.clone(), wal_after[..cut].to_vec());
        let got = fingerprint(&recovered, "a", "b");
        let want = if cut == wal_after.len() {
            &full
        } else {
            &minus_final
        };
        assert_eq!(
            &got,
            want,
            "truncation at byte {cut} of [{}, {}] recovered the wrong state",
            wal_before.len(),
            wal_after.len()
        );
        // Recovery compacts: the recovered catalog must itself be
        // immediately crash-safe, with the WAL folded into the snapshot.
        assert!(recovered.is_durable());
    }
}

/// Wire-level `patch`: the score flips, the response reports the inserted
/// tuple ids, the served post-patch score is bit-identical to a direct
/// `Comparator` run on the patched instances (i.e. the repaired signature
/// maps are *correct*), and the sigmap cache answers the post-patch
/// compare without a rebuild (i.e. the repaired maps were *migrated* to
/// the new instance pointer, not rebuilt from scratch).
#[test]
fn wire_patch_flips_scores_and_migrates_sigmaps() {
    let catalog = Arc::new(ServeCatalog::new(Schema::single("R", &["A"])));
    for name in ["base", "probe"] {
        catalog
            .register_with(name, |cat: &mut Catalog| {
                let mut inst = Instance::new(name, cat);
                let v = cat.konst("x");
                inst.insert(RelId(0), vec![v]);
                Ok(inst)
            })
            .unwrap();
    }
    let server = Server::start(Arc::clone(&catalog), "127.0.0.1:0", ServerConfig::default())
        .expect("bind ephemeral port");
    let mut client = Client::new(server.local_addr()).unwrap();

    let before = client
        .compare("base", "probe", Algo::Signature, CompareOptions::default())
        .unwrap()
        .signature
        .unwrap();
    assert_eq!(before, 1.0, "identical one-tuple instances score 1.0");

    let (tuples, inserted) = client
        .patch(
            "probe",
            vec![
                PatchOp::Modify {
                    tuple: 0,
                    attr: AttrRef::Name("A".into()),
                    value: PatchValue::Const("y".into()),
                },
                PatchOp::Insert {
                    rel: "R".into(),
                    values: vec![PatchValue::FreshNull],
                },
            ],
        )
        .unwrap();
    assert_eq!(tuples, 2);
    assert_eq!(inserted.len(), 1, "one inserted tuple id reported");

    let cache_after_patch = server.sig_cache().stats();
    let after = client
        .compare("base", "probe", Algo::Signature, CompareOptions::default())
        .unwrap()
        .signature
        .unwrap();
    assert!(after < 1.0, "patched instance must change the score");

    let snap = catalog.snapshot();
    let direct = Comparator::new(&snap.catalog)
        .build()
        .unwrap()
        .signature(snap.get("base").unwrap(), snap.get("probe").unwrap())
        .unwrap()
        .best
        .score();
    assert_eq!(
        after.to_bits(),
        direct.to_bits(),
        "served score through repaired sigmaps must be bit-identical to a fresh computation"
    );

    let cache_after_compare = server.sig_cache().stats();
    assert_eq!(
        cache_after_compare.misses, cache_after_patch.misses,
        "post-patch compare must not rebuild sigmaps — the repaired maps migrated"
    );
    assert!(
        cache_after_compare.hits >= cache_after_patch.hits + 2,
        "both sides of the post-patch compare must be cache hits"
    );

    // Typed failure paths, all leaving the catalog version untouched.
    let version = catalog.version();
    let err = client.patch("nope", vec![]).unwrap_err();
    assert_eq!(err.server_code(), Some(ErrorCode::UnknownInstance));
    let err = client
        .patch("probe", vec![PatchOp::Delete { tuple: 999 }])
        .unwrap_err();
    assert_eq!(err.server_code(), Some(ErrorCode::Delta));
    let err = client
        .patch(
            "probe",
            vec![PatchOp::Insert {
                rel: "R".into(),
                values: vec![PatchValue::FreshNull, PatchValue::FreshNull],
            }],
        )
        .unwrap_err();
    assert_eq!(err.server_code(), Some(ErrorCode::BadRequest));
    assert_eq!(catalog.version(), version, "failed patches publish nothing");

    client.shutdown().unwrap();
    server.wait();
}

/// Idle-timeout shedding: silent connections are closed once
/// [`ServerConfig::idle_timeout`] elapses and counted in
/// `ConnStats::closed_idle`; a connection with a request in flight longer
/// than the timeout is never shed. Runs under both runtimes.
#[test]
fn idle_connections_are_shed_but_inflight_ones_survive() {
    let mut runtimes = vec![Runtime::Threaded];
    if cfg!(target_os = "linux") {
        runtimes.push(Runtime::EventLoop);
    }
    for runtime in runtimes {
        let catalog = Arc::new(ServeCatalog::new(Schema::single("R", &["A"])));
        for name in ["a", "b"] {
            register_rows_single(&catalog, name);
        }
        let server = Server::start(
            catalog,
            "127.0.0.1:0",
            ServerConfig {
                runtime,
                idle_timeout: Some(Duration::from_millis(150)),
                poll_interval: Duration::from_millis(10),
                // In flight longer than the idle timeout: the connection
                // must survive to take its response.
                worker_delay: Some(Duration::from_millis(400)),
                ..ServerConfig::default()
            },
        )
        .expect("bind ephemeral port");
        let addr = server.local_addr();

        let mut idle = TcpStream::connect(addr).unwrap();
        idle.set_read_timeout(Some(Duration::from_secs(5))).unwrap();

        let mut client = Client::new(addr).unwrap();
        let scores = client
            .compare("a", "b", Algo::Signature, CompareOptions::default())
            .expect("a connection with work in flight past the idle timeout must not be shed");
        assert_eq!(scores.signature, Some(1.0));

        // The silent connection gets closed and counted…
        let deadline = Instant::now() + Duration::from_secs(5);
        while server.conn_stats().closed_idle == 0 {
            assert!(
                Instant::now() < deadline,
                "{runtime:?}: idle connection was never shed"
            );
            std::thread::sleep(Duration::from_millis(10));
        }
        // …which the peer observes as EOF.
        let mut buf = [0u8; 1];
        assert_eq!(
            idle.read(&mut buf).expect("clean close, not a reset"),
            0,
            "{runtime:?}: shed connection must read as EOF"
        );

        server.shutdown();
    }
}

fn register_rows_single(catalog: &ServeCatalog, name: &str) {
    catalog
        .register_with(name, move |cat: &mut Catalog| {
            let mut inst = Instance::new(name, cat);
            let v = cat.konst("shared");
            inst.insert(RelId(0), vec![v]);
            Ok(inst)
        })
        .unwrap();
}

/// Kills the child server if the test dies before the clean shutdown.
struct ChildGuard(std::process::Child);

impl Drop for ChildGuard {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

fn spawn_serve(data_dir: &std::path::Path) -> (ChildGuard, String) {
    let child = std::process::Command::new(env!("CARGO_BIN_EXE_serve"))
        .args([
            "--addr",
            "127.0.0.1:0",
            "--relation",
            "R:A,B",
            "--data-dir",
            data_dir.to_str().unwrap(),
        ])
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn serve binary");
    let mut guard = ChildGuard(child);
    let stdout = guard.0.stdout.take().unwrap();
    let addr = {
        use std::io::BufRead;
        let mut line = String::new();
        std::io::BufReader::new(stdout)
            .read_line(&mut line)
            .unwrap();
        line.trim()
            .strip_prefix("serve: listening on ")
            .unwrap_or_else(|| panic!("unexpected serve banner: {line:?}"))
            .to_string()
    };
    (guard, addr)
}

fn wait_exit(guard: &mut ChildGuard) {
    let deadline = Instant::now() + Duration::from_secs(15);
    loop {
        if guard.0.try_wait().unwrap().is_some() {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "serve child did not exit after wire shutdown"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
}

/// Full restart durability through the `serve` binary: load two CSV
/// instances (with labeled nulls), patch one over the wire, record the
/// score, shut the process down, start a fresh process over the same
/// `--data-dir`, and require the catalog back — same names, same tuple
/// counts, and a bit-identical compare score — without re-supplying any
/// CSV.
#[test]
fn serve_binary_recovers_catalog_across_restart() {
    let base = std::env::temp_dir().join(format!(
        "ic-serve-durability-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&base);
    let data_dir = base.join("data");
    let csv_dir = base.join("csv");
    std::fs::create_dir_all(&data_dir).unwrap();
    std::fs::create_dir_all(&csv_dir).unwrap();
    std::fs::write(csv_dir.join("R.csv"), "A,B\nVLDB,_N:x\nSIGMOD,1975\n").unwrap();

    let (mut guard, addr) = spawn_serve(&data_dir);
    let mut client = Client::new(addr.as_str()).unwrap();
    assert_eq!(client.load("v1", csv_dir.to_str().unwrap()).unwrap(), 2);
    assert_eq!(client.load("v2", csv_dir.to_str().unwrap()).unwrap(), 2);
    let (tuples, _) = client
        .patch(
            "v1",
            vec![
                PatchOp::Insert {
                    rel: "R".into(),
                    values: vec![PatchValue::Const("EDBT".into()), PatchValue::FreshNull],
                },
                PatchOp::Modify {
                    tuple: 1,
                    attr: AttrRef::Name("B".into()),
                    value: PatchValue::Const("1974".into()),
                },
            ],
        )
        .unwrap();
    assert_eq!(tuples, 3);
    let score_before = client
        .compare("v1", "v2", Algo::Signature, CompareOptions::default())
        .unwrap()
        .signature
        .unwrap();
    client.shutdown().unwrap();
    wait_exit(&mut guard);
    drop(guard);

    // Fresh process, same data dir, no --load: everything must come back.
    let (mut guard, addr) = spawn_serve(&data_dir);
    let mut client = Client::new(addr.as_str()).unwrap();
    let listing = client.list().unwrap();
    let summary: Vec<(String, u64)> = listing.into_iter().map(|i| (i.name, i.tuples)).collect();
    assert_eq!(
        summary,
        vec![("v1".to_string(), 3), ("v2".to_string(), 2)],
        "recovered catalog must hold the loaded-and-patched instances"
    );
    let score_after = client
        .compare("v1", "v2", Algo::Signature, CompareOptions::default())
        .unwrap()
        .signature
        .unwrap();
    assert_eq!(
        score_after.to_bits(),
        score_before.to_bits(),
        "recovered instances must score bit-identically across the restart"
    );
    client.shutdown().unwrap();
    wait_exit(&mut guard);

    std::fs::remove_dir_all(&base).ok();
}
