//! End-to-end acceptance tests: a served comparison must answer with
//! exactly the scores a direct [`Comparator`] call produces, catalog
//! replacement must never corrupt an in-flight request, shutdown must
//! drain the queue, and `stats` must report the per-request spans.

use ic_core::Comparator;
use ic_datagen::{generate_lake, mod_cell, Dataset, LakeParams};
use ic_model::{Catalog, Instance, Schema};
use ic_serve::{Algo, Client, CompareOptions, ErrorCode, ServeCatalog, Server, ServerConfig};
use std::sync::Arc;
use std::time::Duration;

fn start(catalog: Arc<ServeCatalog>, cfg: ServerConfig) -> ic_serve::ServerHandle {
    Server::start(catalog, "127.0.0.1:0", cfg).expect("bind ephemeral port")
}

/// Acceptance criterion: the server answers `compare` with *exactly* the
/// same scores as a direct `Comparator` call on the same instances — the
/// wire format must not perturb a single bit of the f64 scores.
#[test]
fn served_scores_are_bit_identical_to_direct_comparator() {
    let sc = mod_cell(Dataset::Doctors, 10, 0.3, 7);

    // Direct call first (the catalog moves into the server afterwards).
    let cmp = Comparator::new(&sc.catalog).build().unwrap();
    let direct_sig = cmp.signature(&sc.source, &sc.target).unwrap().best.score();
    let direct_exact = cmp.exact(&sc.source, &sc.target).unwrap();
    let (direct_exact_score, direct_optimal) = (direct_exact.best.score(), direct_exact.optimal);

    let catalog = Arc::new(ServeCatalog::from_catalog(sc.catalog));
    catalog.register("source", sc.source).unwrap();
    catalog.register("target", sc.target).unwrap();
    let server = start(catalog, ServerConfig::default());
    let mut client = Client::new(server.local_addr()).unwrap();

    let sig = client
        .compare(
            "source",
            "target",
            Algo::Signature,
            CompareOptions::default(),
        )
        .unwrap();
    assert_eq!(sig.signature.unwrap().to_bits(), direct_sig.to_bits());
    assert_eq!(sig.exact, None);

    let exact = client
        .compare("source", "target", Algo::Exact, CompareOptions::default())
        .unwrap();
    assert_eq!(exact.exact.unwrap().to_bits(), direct_exact_score.to_bits());
    assert_eq!(exact.optimal, Some(direct_optimal));

    let both = client
        .compare("source", "target", Algo::Both, CompareOptions::default())
        .unwrap();
    assert_eq!(both.signature.unwrap().to_bits(), direct_sig.to_bits());
    assert_eq!(both.exact.unwrap().to_bits(), direct_exact_score.to_bits());

    client.shutdown().unwrap();
    server.wait();
}

/// Two-instance catalog over a one-attribute relation where the probe
/// instance holds a single constant, so replacing it flips the score
/// between exactly 1.0 (same constant as base) and 0.0 (different).
fn flip_catalog() -> Arc<ServeCatalog> {
    let catalog = Arc::new(ServeCatalog::new(Schema::single("R", &["A"])));
    for (name, value) in [("base", "x"), ("probe", "x")] {
        register_const(&catalog, name, value);
    }
    catalog
}

fn register_const(catalog: &Arc<ServeCatalog>, name: &str, value: &str) {
    catalog
        .register_with(name, |cat: &mut Catalog| {
            let mut inst = Instance::new(name, cat);
            let v = cat.konst(value);
            inst.insert(ic_model::RelId(0), vec![v]);
            Ok(inst)
        })
        .unwrap();
}

/// Acceptance criterion: a `load` racing an in-flight `compare` never
/// corrupts it — the request admitted before the replacement answers from
/// the old snapshot, and the next request sees the new one.
#[test]
fn concurrent_replacement_preserves_inflight_snapshot() {
    let catalog = flip_catalog();
    let version_before = catalog.version();
    let server = start(
        Arc::clone(&catalog),
        ServerConfig {
            workers: 1,
            // Every compare parks in the worker long enough for the test
            // to replace the instance mid-flight.
            worker_delay: Some(Duration::from_millis(200)),
            ..ServerConfig::default()
        },
    );
    let addr = server.local_addr();

    let inflight = std::thread::spawn(move || {
        let mut client = Client::new(addr).unwrap();
        client.compare("base", "probe", Algo::Signature, CompareOptions::default())
    });

    // Replace "probe" while the compare sleeps in the worker.
    std::thread::sleep(Duration::from_millis(80));
    register_const(&catalog, "probe", "y");
    assert!(catalog.version() > version_before);

    let old = inflight.join().unwrap().unwrap();
    assert_eq!(
        old.signature,
        Some(1.0),
        "in-flight request must answer from the snapshot admitted with it"
    );

    let mut client = Client::new(addr).unwrap();
    let new = client
        .compare("base", "probe", Algo::Signature, CompareOptions::default())
        .unwrap();
    assert_eq!(
        new.signature,
        Some(0.0),
        "requests admitted after the replacement must see the new instance"
    );

    client.shutdown().unwrap();
    server.wait();
}

/// Acceptance criterion: graceful shutdown answers every admitted request
/// before the threads exit — nothing queued is dropped.
#[test]
fn shutdown_drains_admitted_requests() {
    let catalog = flip_catalog();
    let server = start(
        Arc::clone(&catalog),
        ServerConfig {
            workers: 1,
            queue_depth: 8,
            worker_delay: Some(Duration::from_millis(100)),
            ..ServerConfig::default()
        },
    );
    let addr = server.local_addr();

    // Four compares: one in the worker, three parked in the queue.
    let clients: Vec<_> = (0..4)
        .map(|_| {
            std::thread::spawn(move || {
                let mut client = Client::new(addr).unwrap();
                client.compare("base", "probe", Algo::Signature, CompareOptions::default())
            })
        })
        .collect();
    std::thread::sleep(Duration::from_millis(50));

    let mut shutter = Client::new(addr).unwrap();
    shutter.shutdown().unwrap();
    server.wait();

    for c in clients {
        let scores = c
            .join()
            .unwrap()
            .expect("admitted request must be answered through shutdown");
        assert_eq!(scores.signature, Some(1.0));
    }
}

/// Acceptance criterion (incremental re-scoring, serve layer): repeated
/// compares against hot catalog instances reuse the server's signature-map
/// cache, a `load`-style replacement invalidates the stale entry, and the
/// post-replacement score is bit-identical to a fresh [`Comparator`] over
/// the new snapshot — the cache can never leak a stale index into a score.
#[test]
fn sigmap_cache_reuses_and_invalidates_on_replacement() {
    let sc = mod_cell(Dataset::Doctors, 12, 0.3, 9);
    let replacement = sc.source.clone(); // replaces "target" below
    let (src, tgt) = (sc.source.clone(), sc.target.clone());
    let direct = {
        let cmp = Comparator::new(&sc.catalog).build().unwrap();
        cmp.signature(&src, &tgt).unwrap().best.score()
    };

    let catalog = Arc::new(ServeCatalog::from_catalog(sc.catalog));
    catalog.register("source", sc.source).unwrap();
    catalog.register("target", sc.target).unwrap();
    let server = start(Arc::clone(&catalog), ServerConfig::default());
    let mut client = Client::new(server.local_addr()).unwrap();

    // First compare: two cache misses, maps built and stored.
    let first = client
        .compare(
            "source",
            "target",
            Algo::Signature,
            CompareOptions::default(),
        )
        .unwrap();
    let stats = server.sig_cache().stats();
    assert_eq!((stats.hits, stats.misses, stats.invalidations), (0, 2, 0));
    assert_eq!(server.sig_cache().len(), 2);
    assert_eq!(first.signature.unwrap().to_bits(), direct.to_bits());

    // Second compare: both sides served from the cache, same bits.
    let second = client
        .compare(
            "source",
            "target",
            Algo::Signature,
            CompareOptions::default(),
        )
        .unwrap();
    assert_eq!(server.sig_cache().stats().hits, 2);
    assert_eq!(
        second.signature.unwrap().to_bits(),
        first.signature.unwrap().to_bits()
    );

    // Replace "target": the catalog-subscription sweep evicts the stale
    // entry the moment the mutation publishes (it is pinned to the old
    // Arc), so the next compare is a clean miss — and the new score
    // matches a fresh Comparator on the new snapshot (which compares
    // "source" to itself).
    catalog.register("target", replacement).unwrap();
    assert_eq!(
        server.sig_cache().stats().evictions,
        1,
        "sweep must drop the replaced target entry eagerly"
    );
    assert_eq!(server.sig_cache().len(), 1);
    let third = client
        .compare(
            "source",
            "target",
            Algo::Signature,
            CompareOptions::default(),
        )
        .unwrap();
    let stats = server.sig_cache().stats();
    assert_eq!(stats.invalidations, 0, "sweep beat lazy invalidation to it");
    assert_eq!(stats.hits, 3, "source entry survives the replacement");
    let snap = catalog.snapshot();
    let fresh = Comparator::new(&snap.catalog).build().unwrap();
    let expected = fresh
        .signature(snap.get("source").unwrap(), snap.get("target").unwrap())
        .unwrap()
        .best
        .score();
    assert_eq!(third.signature.unwrap().to_bits(), expected.to_bits());
    assert!((third.signature.unwrap() - 1.0).abs() < 1e-12);

    client.shutdown().unwrap();
    server.wait();
}

/// Acceptance criterion: `stats` exports per-request `ic-obs` spans — the
/// `serve.compare` report count equals the number of compares processed.
#[test]
fn stats_report_per_request_spans() {
    let catalog = flip_catalog();
    let server = start(Arc::clone(&catalog), ServerConfig::default());
    let mut client = Client::new(server.local_addr()).unwrap();

    let n = 5;
    for _ in 0..n {
        client
            .compare("base", "probe", Algo::Signature, CompareOptions::default())
            .unwrap();
    }

    let stats = client.stats().unwrap();
    assert_eq!(stats.completed, n);
    assert!(stats.requests >= n);
    assert_eq!(stats.overloaded, 0);
    let span = stats
        .spans
        .iter()
        .find(|s| s.label == ic_serve::COMPARE_LABEL)
        .expect("stats must carry the serve.compare span aggregate");
    assert_eq!(span.reports, n, "one observation per processed compare");

    // The listing rides the same snapshot machinery.
    let listing = client.list().unwrap();
    assert_eq!(listing.len(), 2);
    assert_eq!(listing[0].name, "base");
    assert_eq!(listing[0].tuples, 1);

    client.shutdown().unwrap();
    server.wait();
}

/// Acceptance criterion (top-k search): a served `search` returns hits
/// whose names *and* scores are bit-identical to ranking the catalog with
/// a client-side loop of unbudgeted `compare` calls — the prefilter index
/// only chooses which entries get scored, never how.
#[test]
fn served_search_is_bit_identical_to_client_side_compare_loop() {
    let lake = generate_lake(&LakeParams {
        clusters: 4,
        versions_per_cluster: 3,
        rows: 12,
        ..LakeParams::default()
    });
    let catalog = Arc::new(ServeCatalog::from_catalog(lake.catalog));
    let names: Vec<String> = lake
        .instances
        .iter()
        .map(|i| i.name().to_string())
        .collect();
    for inst in lake.instances {
        let name = inst.name().to_string();
        catalog.register(&name, inst).unwrap();
    }
    let server = start(Arc::clone(&catalog), ServerConfig::default());
    let mut client = Client::new(server.local_addr()).unwrap();

    let (query, k) = ("c1v0", 5);
    let mut brute: Vec<(String, f64, u64)> = names
        .iter()
        .map(|name| {
            let scores = client
                .compare(query, name, Algo::Signature, CompareOptions::default())
                .unwrap();
            (
                name.clone(),
                scores.signature.unwrap(),
                scores.pairs.unwrap(),
            )
        })
        .collect();
    brute.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));

    let results = client.search(query, k, CompareOptions::default()).unwrap();
    assert_eq!(results.total, names.len() as u64);
    assert_eq!(results.hits.len(), k as usize);
    for (hit, (bn, bs, bp)) in results.hits.iter().zip(brute.iter()) {
        assert_eq!(&hit.name, bn);
        assert_eq!(hit.score.to_bits(), bs.to_bits(), "bit-identical scores");
        assert_eq!(hit.pairs, *bp);
    }
    assert_eq!(results.hits[0].name, query, "query matches itself at 1.0");
    assert_eq!(results.hits[0].score, 1.0);

    // The search ran under its own observation label.
    let stats = client.stats().unwrap();
    let span = stats
        .spans
        .iter()
        .find(|s| s.label == ic_serve::SEARCH_LABEL)
        .expect("stats must carry the serve.search span aggregate");
    assert_eq!(span.reports, 1);

    // Typed failures: unknown query, k = 0.
    let err = client
        .search("nope", 3, CompareOptions::default())
        .unwrap_err();
    assert_eq!(err.server_code(), Some(ErrorCode::UnknownInstance));
    let err = client
        .search(query, 0, CompareOptions::default())
        .unwrap_err();
    assert_eq!(err.server_code(), Some(ErrorCode::BadRequest));

    client.shutdown().unwrap();
    server.wait();
}

/// Acceptance criterion (cache leak bugfix): removing instances from the
/// catalog evicts their sigcache entries — `SigMapCache::len()` returns to
/// its pre-load level instead of pinning removed instances forever — and
/// re-registering under the same names works from a clean slate.
#[test]
fn remove_then_reload_evicts_sigcache_entries() {
    let catalog = flip_catalog(); // "base" and "probe"
    let server = start(Arc::clone(&catalog), ServerConfig::default());
    let mut client = Client::new(server.local_addr()).unwrap();
    let pre_load = server.sig_cache().len();
    assert_eq!(pre_load, 0);

    client
        .compare("base", "probe", Algo::Signature, CompareOptions::default())
        .unwrap();
    assert_eq!(server.sig_cache().len(), 2, "both sides cached");

    // Remove both; the catalog-subscription sweep must evict both entries
    // even though nothing ever looks those names up again.
    assert!(catalog.remove("probe"));
    assert_eq!(server.sig_cache().len(), 1);
    assert!(catalog.remove("base"));
    assert_eq!(server.sig_cache().len(), pre_load, "back to pre-load level");
    assert_eq!(server.sig_cache().stats().evictions, 2);

    // Reload under the same names: clean rebuild, correct score.
    register_const(&catalog, "base", "x");
    register_const(&catalog, "probe", "y");
    let scores = client
        .compare("base", "probe", Algo::Signature, CompareOptions::default())
        .unwrap();
    assert_eq!(scores.signature, Some(0.0), "x vs y share nothing");
    assert_eq!(server.sig_cache().len(), 2);

    client.shutdown().unwrap();
    server.wait();
}

/// A sink that panics on its first report only — fault injection for the
/// worker's panic isolation.
struct PanicOnceSink {
    fired: std::sync::atomic::AtomicBool,
}

impl ic_obs::Sink for PanicOnceSink {
    fn on_report(&self, _report: &ic_obs::Report) {
        if !self.fired.swap(true, std::sync::atomic::Ordering::SeqCst) {
            panic!("injected observer failure");
        }
    }
}

/// Acceptance criterion (poisoned-lock bugfix): a panic inside one request
/// — here, a panicking observation sink — answers *that* request with a
/// typed `internal` error and leaves the server fully functional:
/// subsequent requests on the same and on new connections succeed, and
/// shutdown still drains cleanly.
#[test]
fn panicking_observer_sink_does_not_wedge_subsequent_requests() {
    let catalog = flip_catalog();
    let cfg = ServerConfig {
        extra_sink: Some(Arc::new(PanicOnceSink {
            fired: std::sync::atomic::AtomicBool::new(false),
        })),
        ..ServerConfig::default()
    };
    let server = start(Arc::clone(&catalog), cfg);
    let mut client = Client::new(server.local_addr()).unwrap();

    let err = client
        .compare("base", "probe", Algo::Signature, CompareOptions::default())
        .unwrap_err();
    assert_eq!(err.server_code(), Some(ErrorCode::Internal));

    // Same connection, next request: must succeed with the right score.
    let scores = client
        .compare("base", "probe", Algo::Signature, CompareOptions::default())
        .unwrap();
    assert_eq!(scores.signature, Some(1.0));

    // Fresh connection too, and search exercises the index path.
    let mut other = Client::new(server.local_addr()).unwrap();
    let results = other.search("base", 2, CompareOptions::default()).unwrap();
    assert_eq!(results.hits[0].score, 1.0);

    let stats = other.stats().unwrap();
    assert!(stats.errors >= 1, "the panicked request was counted");
    assert!(stats.completed >= 2);

    other.shutdown().unwrap();
    server.wait();
}

/// Acceptance criterion: `discover` over the wire finds exactly the
/// constraints planted by `inject_near_constraints` — the composite key
/// and both FDs, with attribute names resolved — and a zero budget is a
/// typed `budget` error, not a truncated result.
#[test]
fn served_discovery_recalls_planted_constraints() {
    let nc = ic_datagen::inject_near_constraints(&ic_datagen::NearConstraintParams::default());
    let epsilon = nc.epsilon;
    let catalog = Arc::new(ServeCatalog::from_catalog(nc.catalog));
    catalog.register("near", nc.instance).unwrap();
    let server = start(catalog, ServerConfig::default());
    let mut client = Client::new(server.local_addr()).unwrap();

    let opts = ic_serve::DiscoverOptions {
        epsilon: Some(epsilon),
        ..ic_serve::DiscoverOptions::default()
    };
    let found = client.discover("near", opts).unwrap();

    // Recall: every planted constraint is in the answer, by name. (The
    // null sprinkling can only lower g3_min, never push a planted
    // constraint past the gate.)
    assert!(
        found
            .keys
            .iter()
            .any(|k| k.rel == "NC" && k.attrs == ["k0", "k1"]),
        "planted key missing from {:?}",
        found.keys
    );
    for (lhs, rhs) in [(vec!["f0"], "f1"), (vec!["f0", "c0"], "f2")] {
        assert!(
            found
                .fds
                .iter()
                .any(|fd| fd.rel == "NC" && fd.lhs == lhs && fd.rhs == rhs),
            "planted FD {lhs:?} -> {rhs} missing from {:?}",
            found.fds
        );
    }
    for fd in &found.fds {
        assert!(fd.g3_min <= fd.g3_max, "interval must be ordered");
        assert!(fd.g3_min <= epsilon, "gate respected");
    }

    // A zero budget is a typed `budget` error.
    let err = client
        .discover(
            "near",
            ic_serve::DiscoverOptions {
                budget_ms: Some(0),
                ..ic_serve::DiscoverOptions::default()
            },
        )
        .unwrap_err();
    assert_eq!(err.server_code(), Some(ErrorCode::Budget));

    // An out-of-range epsilon is a typed `config` error.
    let err = client
        .discover(
            "near",
            ic_serve::DiscoverOptions {
                epsilon: Some(1.5),
                ..ic_serve::DiscoverOptions::default()
            },
        )
        .unwrap_err();
    assert_eq!(err.server_code(), Some(ErrorCode::Config));

    // An unknown instance is rejected at admission.
    let err = client
        .discover("nope", ic_serve::DiscoverOptions::default())
        .unwrap_err();
    assert_eq!(err.server_code(), Some(ErrorCode::UnknownInstance));

    // The discovery ran under its own observation label.
    let stats = client.stats().unwrap();
    assert!(stats
        .spans
        .iter()
        .any(|s| s.label == ic_serve::DISCOVER_LABEL && s.reports >= 1));

    client.shutdown().unwrap();
    server.wait();
}
