//! End-to-end acceptance tests: a served comparison must answer with
//! exactly the scores a direct [`Comparator`] call produces, catalog
//! replacement must never corrupt an in-flight request, shutdown must
//! drain the queue, and `stats` must report the per-request spans.

use ic_core::Comparator;
use ic_datagen::{mod_cell, Dataset};
use ic_model::{Catalog, Instance, Schema};
use ic_serve::{Algo, Client, CompareOptions, ServeCatalog, Server, ServerConfig};
use std::sync::Arc;
use std::time::Duration;

fn start(catalog: Arc<ServeCatalog>, cfg: ServerConfig) -> ic_serve::ServerHandle {
    Server::start(catalog, "127.0.0.1:0", cfg).expect("bind ephemeral port")
}

/// Acceptance criterion: the server answers `compare` with *exactly* the
/// same scores as a direct `Comparator` call on the same instances — the
/// wire format must not perturb a single bit of the f64 scores.
#[test]
fn served_scores_are_bit_identical_to_direct_comparator() {
    let sc = mod_cell(Dataset::Doctors, 10, 0.3, 7);

    // Direct call first (the catalog moves into the server afterwards).
    let cmp = Comparator::new(&sc.catalog).build().unwrap();
    let direct_sig = cmp.signature(&sc.source, &sc.target).unwrap().best.score();
    let direct_exact = cmp.exact(&sc.source, &sc.target).unwrap();
    let (direct_exact_score, direct_optimal) = (direct_exact.best.score(), direct_exact.optimal);

    let catalog = Arc::new(ServeCatalog::from_catalog(sc.catalog));
    catalog.register("source", sc.source).unwrap();
    catalog.register("target", sc.target).unwrap();
    let server = start(catalog, ServerConfig::default());
    let mut client = Client::connect(server.local_addr()).unwrap();

    let sig = client
        .compare(
            "source",
            "target",
            Algo::Signature,
            CompareOptions::default(),
        )
        .unwrap();
    assert_eq!(sig.signature.unwrap().to_bits(), direct_sig.to_bits());
    assert_eq!(sig.exact, None);

    let exact = client
        .compare("source", "target", Algo::Exact, CompareOptions::default())
        .unwrap();
    assert_eq!(exact.exact.unwrap().to_bits(), direct_exact_score.to_bits());
    assert_eq!(exact.optimal, Some(direct_optimal));

    let both = client
        .compare("source", "target", Algo::Both, CompareOptions::default())
        .unwrap();
    assert_eq!(both.signature.unwrap().to_bits(), direct_sig.to_bits());
    assert_eq!(both.exact.unwrap().to_bits(), direct_exact_score.to_bits());

    client.shutdown().unwrap();
    server.wait();
}

/// Two-instance catalog over a one-attribute relation where the probe
/// instance holds a single constant, so replacing it flips the score
/// between exactly 1.0 (same constant as base) and 0.0 (different).
fn flip_catalog() -> Arc<ServeCatalog> {
    let catalog = Arc::new(ServeCatalog::new(Schema::single("R", &["A"])));
    for (name, value) in [("base", "x"), ("probe", "x")] {
        register_const(&catalog, name, value);
    }
    catalog
}

fn register_const(catalog: &Arc<ServeCatalog>, name: &str, value: &str) {
    catalog
        .register_with(name, |cat: &mut Catalog| {
            let mut inst = Instance::new(name, cat);
            let v = cat.konst(value);
            inst.insert(ic_model::RelId(0), vec![v]);
            Ok(inst)
        })
        .unwrap();
}

/// Acceptance criterion: a `load` racing an in-flight `compare` never
/// corrupts it — the request admitted before the replacement answers from
/// the old snapshot, and the next request sees the new one.
#[test]
fn concurrent_replacement_preserves_inflight_snapshot() {
    let catalog = flip_catalog();
    let version_before = catalog.version();
    let server = start(
        Arc::clone(&catalog),
        ServerConfig {
            workers: 1,
            // Every compare parks in the worker long enough for the test
            // to replace the instance mid-flight.
            worker_delay: Some(Duration::from_millis(200)),
            ..ServerConfig::default()
        },
    );
    let addr = server.local_addr();

    let inflight = std::thread::spawn(move || {
        let mut client = Client::connect(addr).unwrap();
        client.compare("base", "probe", Algo::Signature, CompareOptions::default())
    });

    // Replace "probe" while the compare sleeps in the worker.
    std::thread::sleep(Duration::from_millis(80));
    register_const(&catalog, "probe", "y");
    assert!(catalog.version() > version_before);

    let old = inflight.join().unwrap().unwrap();
    assert_eq!(
        old.signature,
        Some(1.0),
        "in-flight request must answer from the snapshot admitted with it"
    );

    let mut client = Client::connect(addr).unwrap();
    let new = client
        .compare("base", "probe", Algo::Signature, CompareOptions::default())
        .unwrap();
    assert_eq!(
        new.signature,
        Some(0.0),
        "requests admitted after the replacement must see the new instance"
    );

    client.shutdown().unwrap();
    server.wait();
}

/// Acceptance criterion: graceful shutdown answers every admitted request
/// before the threads exit — nothing queued is dropped.
#[test]
fn shutdown_drains_admitted_requests() {
    let catalog = flip_catalog();
    let server = start(
        Arc::clone(&catalog),
        ServerConfig {
            workers: 1,
            queue_depth: 8,
            worker_delay: Some(Duration::from_millis(100)),
            ..ServerConfig::default()
        },
    );
    let addr = server.local_addr();

    // Four compares: one in the worker, three parked in the queue.
    let clients: Vec<_> = (0..4)
        .map(|_| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                client.compare("base", "probe", Algo::Signature, CompareOptions::default())
            })
        })
        .collect();
    std::thread::sleep(Duration::from_millis(50));

    let mut shutter = Client::connect(addr).unwrap();
    shutter.shutdown().unwrap();
    server.wait();

    for c in clients {
        let scores = c
            .join()
            .unwrap()
            .expect("admitted request must be answered through shutdown");
        assert_eq!(scores.signature, Some(1.0));
    }
}

/// Acceptance criterion (incremental re-scoring, serve layer): repeated
/// compares against hot catalog instances reuse the server's signature-map
/// cache, a `load`-style replacement invalidates the stale entry, and the
/// post-replacement score is bit-identical to a fresh [`Comparator`] over
/// the new snapshot — the cache can never leak a stale index into a score.
#[test]
fn sigmap_cache_reuses_and_invalidates_on_replacement() {
    let sc = mod_cell(Dataset::Doctors, 12, 0.3, 9);
    let replacement = sc.source.clone(); // replaces "target" below
    let (src, tgt) = (sc.source.clone(), sc.target.clone());
    let direct = {
        let cmp = Comparator::new(&sc.catalog).build().unwrap();
        cmp.signature(&src, &tgt).unwrap().best.score()
    };

    let catalog = Arc::new(ServeCatalog::from_catalog(sc.catalog));
    catalog.register("source", sc.source).unwrap();
    catalog.register("target", sc.target).unwrap();
    let server = start(Arc::clone(&catalog), ServerConfig::default());
    let mut client = Client::connect(server.local_addr()).unwrap();

    // First compare: two cache misses, maps built and stored.
    let first = client
        .compare(
            "source",
            "target",
            Algo::Signature,
            CompareOptions::default(),
        )
        .unwrap();
    let stats = server.sig_cache().stats();
    assert_eq!((stats.hits, stats.misses, stats.invalidations), (0, 2, 0));
    assert_eq!(server.sig_cache().len(), 2);
    assert_eq!(first.signature.unwrap().to_bits(), direct.to_bits());

    // Second compare: both sides served from the cache, same bits.
    let second = client
        .compare(
            "source",
            "target",
            Algo::Signature,
            CompareOptions::default(),
        )
        .unwrap();
    assert_eq!(server.sig_cache().stats().hits, 2);
    assert_eq!(
        second.signature.unwrap().to_bits(),
        first.signature.unwrap().to_bits()
    );

    // Replace "target": the cached entry is pinned to the old Arc and must
    // be invalidated; the new score matches a fresh Comparator on the new
    // snapshot (which compares "source" to itself).
    catalog.register("target", replacement).unwrap();
    let third = client
        .compare(
            "source",
            "target",
            Algo::Signature,
            CompareOptions::default(),
        )
        .unwrap();
    let stats = server.sig_cache().stats();
    assert_eq!(stats.invalidations, 1, "stale target entry must be dropped");
    assert_eq!(stats.hits, 3, "source entry survives the replacement");
    let snap = catalog.snapshot();
    let fresh = Comparator::new(&snap.catalog).build().unwrap();
    let expected = fresh
        .signature(snap.get("source").unwrap(), snap.get("target").unwrap())
        .unwrap()
        .best
        .score();
    assert_eq!(third.signature.unwrap().to_bits(), expected.to_bits());
    assert!((third.signature.unwrap() - 1.0).abs() < 1e-12);

    client.shutdown().unwrap();
    server.wait();
}

/// Acceptance criterion: `stats` exports per-request `ic-obs` spans — the
/// `serve.compare` report count equals the number of compares processed.
#[test]
fn stats_report_per_request_spans() {
    let catalog = flip_catalog();
    let server = start(Arc::clone(&catalog), ServerConfig::default());
    let mut client = Client::connect(server.local_addr()).unwrap();

    let n = 5;
    for _ in 0..n {
        client
            .compare("base", "probe", Algo::Signature, CompareOptions::default())
            .unwrap();
    }

    let stats = client.stats().unwrap();
    assert_eq!(stats.completed, n);
    assert!(stats.requests >= n);
    assert_eq!(stats.overloaded, 0);
    let span = stats
        .spans
        .iter()
        .find(|s| s.label == ic_serve::COMPARE_LABEL)
        .expect("stats must carry the serve.compare span aggregate");
    assert_eq!(span.reports, n, "one observation per processed compare");

    // The listing rides the same snapshot machinery.
    let listing = client.list().unwrap();
    assert_eq!(listing.len(), 2);
    assert_eq!(listing[0].name, "base");
    assert_eq!(listing[0].tuples, 1);

    client.shutdown().unwrap();
    server.wait();
}
