//! Error-path coverage: framing violations, undecodable payloads, unknown
//! instances, zero budgets, admission-control rejection, and bad
//! configuration — each must produce a *typed* error response (never a
//! hang, never a dropped connection where the protocol can continue).

use ic_model::{Catalog, Instance, Schema};
use ic_serve::frame::{write_frame, FrameError, FrameReader};
use ic_serve::{
    Algo, Client, CompareOptions, ErrorCode, Request, Response, ServeCatalog, Server, ServerConfig,
    ServerHandle,
};
use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A server over a two-instance catalog (`"a"`, `"b"`, one shared tuple).
fn server_with(cfg: ServerConfig) -> ServerHandle {
    let catalog = Arc::new(ServeCatalog::new(Schema::single("R", &["A"])));
    for name in ["a", "b"] {
        catalog
            .register_with(name, |cat: &mut Catalog| {
                let mut inst = Instance::new(name, cat);
                let v = cat.konst("shared");
                inst.insert(ic_model::RelId(0), vec![v]);
                Ok(inst)
            })
            .unwrap();
    }
    Server::start(catalog, "127.0.0.1:0", cfg).unwrap()
}

#[test]
fn broken_framing_gets_typed_error_then_close() {
    let server = server_with(ServerConfig::default());
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();

    // Not a frame at all: no way to resynchronize, so the server answers
    // once and closes.
    stream.write_all(b"GET / HTTP/1.1\r\n\r\n").unwrap();
    let mut reader = FrameReader::new(stream.try_clone().unwrap());
    match Response::decode(&reader.next_frame().unwrap()).unwrap() {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::Malformed),
        other => panic!("expected malformed error, got {other:?}"),
    }
    assert!(matches!(
        reader.next_frame(),
        Err(FrameError::Closed) | Err(FrameError::Io(_))
    ));

    server.shutdown();
}

#[test]
fn undecodable_payload_keeps_connection_alive() {
    let server = server_with(ServerConfig::default());
    let stream = TcpStream::connect(server.local_addr()).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = FrameReader::new(stream);

    // Well-framed but not JSON: typed `malformed`, connection survives.
    write_frame(&mut writer, b"{definitely not json").unwrap();
    match Response::decode(&reader.next_frame().unwrap()).unwrap() {
        Response::Error { id, code, .. } => {
            assert_eq!(code, ErrorCode::Malformed);
            assert_eq!(id, 0);
        }
        other => panic!("expected malformed error, got {other:?}"),
    }

    // Valid JSON, unknown shape: `bad_request` with the id salvaged.
    write_frame(&mut writer, b"{\"id\":7,\"kind\":\"dance\"}").unwrap();
    match Response::decode(&reader.next_frame().unwrap()).unwrap() {
        Response::Error { id, code, .. } => {
            assert_eq!(code, ErrorCode::BadRequest);
            assert_eq!(id, 7, "parseable id must be echoed even on errors");
        }
        other => panic!("expected bad_request error, got {other:?}"),
    }

    // The same connection still answers real requests.
    write_frame(&mut writer, &Request::List { id: 8 }.encode()).unwrap();
    match Response::decode(&reader.next_frame().unwrap()).unwrap() {
        Response::Listing { id, instances } => {
            assert_eq!(id, 8);
            assert_eq!(instances.len(), 2);
        }
        other => panic!("expected listing, got {other:?}"),
    }

    server.shutdown();
}

#[test]
fn unknown_instance_is_a_typed_error() {
    let server = server_with(ServerConfig::default());
    let mut client = Client::new(server.local_addr()).unwrap();
    let err = client
        .compare(
            "a",
            "nonexistent",
            Algo::Signature,
            CompareOptions::default(),
        )
        .unwrap_err();
    assert_eq!(err.server_code(), Some(ErrorCode::UnknownInstance));
    server.shutdown();
}

#[test]
fn zero_budget_is_a_fast_typed_error_not_a_hang() {
    let server = server_with(ServerConfig::default());
    let mut client = Client::new(server.local_addr()).unwrap();
    let start = Instant::now();
    let err = client
        .compare(
            "a",
            "b",
            Algo::Exact,
            CompareOptions {
                budget_ms: Some(0),
                ..CompareOptions::default()
            },
        )
        .unwrap_err();
    assert_eq!(err.server_code(), Some(ErrorCode::Budget));
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "budget_ms: 0 must be rejected promptly"
    );
    server.shutdown();
}

#[test]
fn invalid_lambda_maps_to_config_error() {
    let server = server_with(ServerConfig::default());
    let mut client = Client::new(server.local_addr()).unwrap();
    let err = client
        .compare(
            "a",
            "b",
            Algo::Signature,
            CompareOptions {
                lambda: Some(2.0),
                ..CompareOptions::default()
            },
        )
        .unwrap_err();
    assert_eq!(err.server_code(), Some(ErrorCode::Config));
    server.shutdown();
}

#[test]
fn full_queue_rejects_with_overloaded() {
    let server = server_with(ServerConfig {
        workers: 1,
        queue_depth: 1,
        // Park each job in the single worker long enough to fill the
        // one-slot queue behind it deterministically.
        worker_delay: Some(Duration::from_millis(300)),
        ..ServerConfig::default()
    });
    let addr = server.local_addr();

    let occupy: Vec<_> = (0..2)
        .map(|i| {
            std::thread::spawn(move || {
                // Stagger so the first compare is in the worker and the
                // second is parked in the queue slot.
                std::thread::sleep(Duration::from_millis(60 * i));
                let mut client = Client::new(addr).unwrap();
                client.compare("a", "b", Algo::Signature, CompareOptions::default())
            })
        })
        .collect();
    std::thread::sleep(Duration::from_millis(180));

    // Worker busy + queue slot taken: admission control must answer
    // immediately instead of blocking.
    let mut client = Client::new(addr).unwrap();
    let start = Instant::now();
    let err = client
        .compare("a", "b", Algo::Signature, CompareOptions::default())
        .unwrap_err();
    assert_eq!(err.server_code(), Some(ErrorCode::Overloaded));
    assert!(
        start.elapsed() < Duration::from_millis(250),
        "overload rejection must not wait for the queue to drain"
    );

    for t in occupy {
        t.join().unwrap().expect("admitted requests still complete");
    }
    let stats = client.stats().unwrap();
    assert!(stats.overloaded >= 1);
    server.shutdown();
}
