//! Event-loop runtime e2e: pipelining conformance, slow-client fault
//! injection (write backpressure), drain shutdown with stalled peers, and
//! the 10k-idle-connections smoke test.
//!
//! The pipelining tests run under whichever runtime `IC_SERVE_RUNTIME`
//! selects (CI runs both; the conformance contract — id-matched,
//! order-insensitive responses — holds for either). The backpressure,
//! stalled-drain, and 10k tests force [`Runtime::EventLoop`] explicitly:
//! they pin behavior only that runtime promises, and are skipped off
//! Linux where it does not exist.

use ic_model::{Catalog, Instance, Schema};
use ic_serve::frame::{write_frame, FrameReader};
use ic_serve::{
    Algo, Client, CompareOptions, ErrorCode, Request, Response, Runtime, ServeCatalog, Server,
    ServerConfig, ServerHandle,
};
use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A server over a two-instance catalog (`"a"`, `"b"`, one shared tuple).
fn server_with(cfg: ServerConfig) -> ServerHandle {
    let catalog = Arc::new(ServeCatalog::new(Schema::single("R", &["A"])));
    for name in ["a", "b"] {
        catalog
            .register_with(name, |cat: &mut Catalog| {
                let mut inst = Instance::new(name, cat);
                let v = cat.konst("shared");
                inst.insert(ic_model::RelId(0), vec![v]);
                Ok(inst)
            })
            .unwrap();
    }
    Server::start(catalog, "127.0.0.1:0", cfg).unwrap()
}

fn compare_req(id: u64, left: &str, right: &str) -> Request {
    Request::Compare {
        id,
        left: left.into(),
        right: right.into(),
        algo: Algo::Signature,
        lambda: None,
        budget_ms: None,
    }
}

/// Pipelining conformance: N requests written in **one** TCP segment must
/// produce N id-matched responses (matched order-insensitively), and the
/// two recoverable mid-pipeline failures — a well-framed undecodable
/// payload and an oversized declared frame length — must each fail only
/// themselves while every later pipelined request on the same connection
/// still succeeds. (The *unrecoverable* case, a broken frame header, is
/// pinned in errors.rs: typed error, then close.)
#[test]
fn pipelined_requests_complete_id_matched_and_order_insensitive() {
    let server = server_with(ServerConfig {
        workers: 2,
        queue_depth: 64,
        max_frame_len: 4096,
        ..ServerConfig::default()
    });

    // The reference score, via an ordinary sequential client.
    let mut seq = Client::new(server.local_addr()).unwrap();
    let reference = seq
        .compare("a", "b", Algo::Signature, CompareOptions::default())
        .unwrap()
        .signature
        .unwrap();

    // One buffer: 8 compares, a bad-shape payload, an oversized frame,
    // then 8 more compares — written in a single `write_all`.
    let mut wire = Vec::new();
    for id in 1..=8u64 {
        write_frame(&mut wire, &compare_req(id, "a", "b").encode()).unwrap();
    }
    write_frame(&mut wire, br#"{"id":100,"kind":"dance"}"#).unwrap();
    write_frame(&mut wire, &vec![b'x'; 8000]).unwrap(); // over the 4096 cap
    for id in 9..=16u64 {
        write_frame(&mut wire, &compare_req(id, "a", "b").encode()).unwrap();
    }

    let stream = TcpStream::connect(server.local_addr()).unwrap();
    stream.set_nodelay(true).unwrap();
    (&stream).write_all(&wire).unwrap();

    let mut reader = FrameReader::new(&stream);
    let mut compared = std::collections::BTreeMap::new();
    let mut bad_request = 0u32;
    let mut bad_frame = 0u32;
    for _ in 0..18 {
        match Response::decode(&reader.next_frame().unwrap()).unwrap() {
            Response::Compared { id, scores } => {
                assert!(compared.insert(id, scores).is_none(), "duplicate id {id}");
            }
            Response::Error { id, code, .. } if code == ErrorCode::BadRequest => {
                assert_eq!(id, 100, "salvageable id must be echoed");
                bad_request += 1;
            }
            Response::Error { id, code, .. } if code == ErrorCode::BadFrame => {
                assert_eq!(id, 0, "an oversized frame has no salvageable id");
                bad_frame += 1;
            }
            other => panic!("unexpected response: {other:?}"),
        }
    }
    assert_eq!(bad_request, 1);
    assert_eq!(bad_frame, 1);
    assert_eq!(
        compared.keys().copied().collect::<Vec<_>>(),
        (1..=16).collect::<Vec<_>>(),
        "every compare answered exactly once, failures failed only themselves"
    );
    for scores in compared.values() {
        assert_eq!(
            scores.signature.unwrap().to_bits(),
            reference.to_bits(),
            "pipelined scores are bit-identical to sequential ones"
        );
    }

    server.shutdown();
}

/// The `Client` send/recv split: keep 8 requests in flight, match the
/// out-of-order responses by id, scores bit-identical to sequential.
#[test]
fn pipelined_client_matches_sequential_scores() {
    let server = server_with(ServerConfig::default());
    let mut client = Client::new(server.local_addr()).unwrap();
    let reference = client
        .compare("a", "b", Algo::Signature, CompareOptions::default())
        .unwrap()
        .signature
        .unwrap();

    let ids: Vec<u64> = (0..8)
        .map(|_| client.send(compare_req(0, "a", "b")).unwrap())
        .collect();
    let mut seen = Vec::new();
    for _ in 0..ids.len() {
        match client.recv().unwrap() {
            Response::Compared { id, scores } => {
                assert_eq!(scores.signature.unwrap().to_bits(), reference.to_bits());
                seen.push(id);
            }
            other => panic!("unexpected response: {other:?}"),
        }
    }
    seen.sort_unstable();
    assert_eq!(seen, ids, "every in-flight id answered exactly once");

    client.shutdown().unwrap();
    server.wait();
}

/// Completion-batching sanity check (event-loop runtime): a pipelined
/// burst must complete with every response intact *and* the loop must
/// observably coalesce completions landing in the same tick into shared
/// flushes ([`ConnStats::coalesced_frames`] advances). Coalescing is
/// timing-dependent per burst, so bursts repeat under a deadline — but
/// correctness of every burst is asserted unconditionally.
#[test]
fn pipelined_burst_coalesces_completion_flushes() {
    if !cfg!(target_os = "linux") {
        return; // completion batching is event-loop (Linux) behavior
    }
    let server = server_with(ServerConfig {
        runtime: Runtime::EventLoop,
        workers: 4,
        queue_depth: 256,
        ..ServerConfig::default()
    });

    let mut seq = Client::new(server.local_addr()).unwrap();
    let reference = seq
        .compare("a", "b", Algo::Signature, CompareOptions::default())
        .unwrap()
        .signature
        .unwrap();

    const BURST: u64 = 32;
    let stream = TcpStream::connect(server.local_addr()).unwrap();
    stream.set_nodelay(true).unwrap();
    let mut reader = FrameReader::new(&stream);
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        // One burst: BURST compares in a single TCP segment, then read
        // all BURST responses (out-of-order, id-matched).
        let mut wire = Vec::new();
        for id in 1..=BURST {
            write_frame(&mut wire, &compare_req(id, "a", "b").encode()).unwrap();
        }
        (&stream).write_all(&wire).unwrap();
        let mut seen = Vec::new();
        for _ in 0..BURST {
            match Response::decode(&reader.next_frame().unwrap()).unwrap() {
                Response::Compared { id, scores } => {
                    assert_eq!(
                        scores.signature.unwrap().to_bits(),
                        reference.to_bits(),
                        "batched flushes must not corrupt or reorder frames"
                    );
                    seen.push(id);
                }
                other => panic!("unexpected response: {other:?}"),
            }
        }
        seen.sort_unstable();
        assert_eq!(seen, (1..=BURST).collect::<Vec<_>>());

        if server.conn_stats().coalesced_frames > 0 {
            break; // at least one tick flushed ≥ 2 responses together
        }
        assert!(
            Instant::now() < deadline,
            "no completion batch observed after repeated pipelined bursts; \
             conn_stats: {:?}",
            server.conn_stats()
        );
    }

    server.shutdown();
}

/// A compare against a name this long produces an inline error response of
/// roughly the same size — a cheap way to pump bytes toward a peer.
fn huge_name_request(id: u64) -> Request {
    compare_req(id, &"x".repeat(100_000), "b")
}

/// Slow-client fault injection: a peer that pipelines requests but never
/// reads responses must cross the per-connection write cap and be
/// disconnected — with the close recorded under the typed backpressure
/// reason — while a healthy concurrent connection completes unaffected.
#[test]
fn slow_reader_trips_backpressure_and_is_disconnected() {
    if !cfg!(target_os = "linux") {
        return; // backpressure caps are an event-loop (Linux) behavior
    }
    let server = server_with(ServerConfig {
        runtime: Runtime::EventLoop,
        max_write_buffer: 64 * 1024,
        workers: 2,
        queue_depth: 64,
        ..ServerConfig::default()
    });
    let addr = server.local_addr();

    // The stalling peer: ~20 MB of responses will be queued at it, far
    // over kernel socket buffers plus the 64 KiB cap; it reads nothing.
    // Writes proceed until the server disconnects it, then error out.
    let staller = std::thread::spawn(move || {
        let Ok(stream) = TcpStream::connect(addr) else {
            return;
        };
        let _ = stream.set_nodelay(true);
        for id in 0..200u64 {
            let mut frame = Vec::new();
            write_frame(&mut frame, &huge_name_request(id).encode()).unwrap();
            if (&stream).write_all(&frame).is_err() {
                return; // disconnected by the server: expected
            }
        }
        // Keep the socket open (still not reading) until dropped.
        std::thread::sleep(Duration::from_secs(2));
    });

    // Meanwhile a healthy connection keeps getting real answers.
    let mut healthy = Client::new(addr).unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let scores = healthy
            .compare("a", "b", Algo::Signature, CompareOptions::default())
            .expect("healthy connection must be unaffected");
        assert!(scores.signature.unwrap() > 0.0);
        if server.conn_stats().closed_backpressure >= 1 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "backpressure cap never tripped; conn_stats: {:?}",
            server.conn_stats()
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    staller.join().unwrap();
    server.shutdown();
}

/// Drain shutdown must join cleanly — and promptly — with a stalled
/// connection still holding undelivered response bytes: the stalled peer
/// gets `drain_grace` to take delivery, then is force-closed.
#[test]
fn drain_shutdown_joins_cleanly_with_a_stalled_connection_present() {
    if !cfg!(target_os = "linux") {
        return;
    }
    let server = server_with(ServerConfig {
        runtime: Runtime::EventLoop,
        // Cap far above what this test queues: the peer is stalled but
        // *not* backpressure-closed, so shutdown meets it still connected.
        max_write_buffer: 1 << 30,
        drain_grace: Duration::from_millis(150),
        workers: 2,
        queue_depth: 64,
        ..ServerConfig::default()
    });
    let addr = server.local_addr();

    // Queue ~6 MB of responses at a peer that never reads: kernel buffers
    // fill and the rest stays pending in the server's write buffer.
    let stalled = TcpStream::connect(addr).unwrap();
    for id in 0..60u64 {
        let mut frame = Vec::new();
        write_frame(&mut frame, &huge_name_request(id).encode()).unwrap();
        (&stalled).write_all(&frame).unwrap();
    }
    // Give the loop time to classify them and fill the socket buffers.
    std::thread::sleep(Duration::from_millis(300));

    // A healthy request still completes, then shutdown must not hang on
    // the stalled peer.
    let mut healthy = Client::new(addr).unwrap();
    healthy
        .compare("a", "b", Algo::Signature, CompareOptions::default())
        .unwrap();

    let (done_tx, done_rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        server.shutdown();
        let _ = done_tx.send(());
    });
    done_rx
        .recv_timeout(Duration::from_secs(10))
        .expect("shutdown must drain and join despite the stalled connection");
    drop(stalled);
}

/// Kills the child server if the test dies before the clean shutdown.
struct ChildGuard(std::process::Child);

impl Drop for ChildGuard {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

/// The acceptance smoke test: 10 000 concurrent idle connections against
/// the event-loop runtime, with bounded threads and memory (i.e. no
/// thread-per-connection), while the server keeps answering requests.
/// The server runs as a child process (the `serve` binary) so its /proc
/// thread and RSS numbers are its own, and so this test's 10k client
/// descriptors fit the process fd limit.
#[test]
fn ten_thousand_idle_connections_smoke() {
    if !cfg!(target_os = "linux") {
        return;
    }
    const CONNS: usize = 10_000;

    let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_serve"))
        .args([
            "--addr",
            "127.0.0.1:0",
            "--relation",
            "R:A",
            "--runtime",
            "event",
            "--workers",
            "2",
        ])
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn serve binary");
    let stdout = child.stdout.take().unwrap();
    let mut guard = ChildGuard(child);

    // The binary prints exactly one parseable line once bound.
    let addr = {
        use std::io::BufRead;
        let mut line = String::new();
        std::io::BufReader::new(stdout)
            .read_line(&mut line)
            .unwrap();
        line.trim()
            .strip_prefix("serve: listening on ")
            .unwrap_or_else(|| panic!("unexpected serve banner: {line:?}"))
            .to_string()
    };

    let mut conns: Vec<TcpStream> = Vec::with_capacity(CONNS);
    for i in 0..CONNS {
        match TcpStream::connect(&addr) {
            Ok(s) => conns.push(s),
            Err(e) => {
                // Transient listen-backlog pressure: brief pause, retry.
                std::thread::sleep(Duration::from_millis(20));
                conns.push(
                    TcpStream::connect(&addr)
                        .unwrap_or_else(|_| panic!("connect #{i} failed twice: {e}")),
                );
            }
        }
        // Pace below the listen backlog (~128): an overflowed backlog
        // drops the SYN and the retransmit costs a full second. On a
        // single-core machine the accept loop only drains when the
        // connecting thread yields the CPU.
        if i % 64 == 63 {
            std::thread::sleep(Duration::from_millis(1));
        }
    }
    assert_eq!(conns.len(), CONNS);

    // The server still answers — including on long-idle connections from
    // the very first batch.
    for &i in &[0usize, CONNS / 2, CONNS - 1] {
        write_frame(&mut (&conns[i]), &Request::Stats { id: 7 }.encode()).unwrap();
        let mut reader = FrameReader::new(&conns[i]);
        match Response::decode(&reader.next_frame().unwrap()).unwrap() {
            Response::Stats { id, .. } => assert_eq!(id, 7),
            other => panic!("expected stats, got {other:?}"),
        }
    }

    // Bounded resources: thread count nowhere near the connection count,
    // RSS bounded (a thread-per-connection runtime would need ~10k stacks).
    let status =
        std::fs::read_to_string(format!("/proc/{}/status", guard.0.id())).expect("child /proc");
    let field = |key: &str| -> u64 {
        status
            .lines()
            .find_map(|l| l.strip_prefix(key))
            .and_then(|v| v.split_whitespace().next())
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("no {key} in child status"))
    };
    let threads = field("Threads:");
    let rss_kb = field("VmRSS:");
    assert!(
        threads < 64,
        "event loop must not spawn per-connection threads (Threads: {threads})"
    );
    assert!(
        rss_kb < 300_000,
        "10k idle connections must stay under ~300 MB (VmRSS: {rss_kb} kB)"
    );

    // Clean wire shutdown with 10k connections still open; the child must
    // drain and exit on its own.
    let mut client = Client::new(addr.as_str()).unwrap();
    client.shutdown().unwrap();
    let deadline = Instant::now() + Duration::from_secs(15);
    loop {
        if guard.0.try_wait().unwrap().is_some() {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "serve child did not exit after wire shutdown"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
    drop(conns);
}
