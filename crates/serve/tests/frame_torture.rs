//! Torture property suite for the incremental frame reader.
//!
//! The event-loop runtime feeds the reader whatever byte fragments the
//! kernel happens to deliver, so the reader's *observable behavior* — the
//! sequence of accepted frames, recoverable oversized rejections, and the
//! terminal outcome (clean close, truncation, fatal framing violation) —
//! must be a function of the byte stream alone, never of how it was
//! chunked or how many `WouldBlock`s interrupted it.
//!
//! Streams are built from valid frames, oversized frames (over a
//! deliberately tiny 64-byte cap), and garbage; optionally truncated at an
//! arbitrary byte. Each stream is replayed whole, one byte at a time,
//! split at exhaustive two-chunk boundaries, and in random chunk patterns
//! with injected `WouldBlock`s — every replay must produce the identical
//! event sequence. Clean (garbage-free) streams are additionally checked
//! against an independent oracle that predicts the events from the
//! segment list and cut position.

use ic_serve::frame::{write_frame, FrameError, FrameReader};
use ic_testkit::{Gen, Runner};
use rand::RngExt;
use std::io::{self, Cursor, Read};

/// The per-reader payload cap used throughout — small enough that
/// "oversized" frames stay cheap to generate.
const CAP: usize = 64;

/// One observable reader event.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Ev {
    Frame(Vec<u8>),
    TooLarge(usize),
    /// Unrecoverable framing violation (bad header / missing terminator).
    Fatal,
    Truncated,
    Closed,
}

/// Replays a reader to its terminal event, via the polling entry point
/// (so injected `WouldBlock`s are exercised exactly as the event loop
/// would see them).
fn drive(mut reader: FrameReader<impl Read>) -> Vec<Ev> {
    let mut evs = Vec::new();
    loop {
        match reader.poll_frame() {
            Ok(Some(p)) => evs.push(Ev::Frame(p)),
            Ok(None) => continue, // WouldBlock: poll again
            Err(FrameError::TooLarge(n)) => evs.push(Ev::TooLarge(n)), // recoverable
            Err(FrameError::Truncated) => {
                evs.push(Ev::Truncated);
                return evs;
            }
            Err(FrameError::Closed) => {
                evs.push(Ev::Closed);
                return evs;
            }
            Err(FrameError::BadHeader)
            | Err(FrameError::MissingTerminator)
            | Err(FrameError::Io(_)) => {
                evs.push(Ev::Fatal);
                return evs;
            }
        }
    }
}

/// A reader that delivers the stream in a scripted chunk pattern,
/// optionally failing every `block_every`-th read with `WouldBlock`.
struct Script {
    data: Cursor<Vec<u8>>,
    sizes: Vec<usize>,
    i: usize,
    block_every: usize, // 0 = never block
    reads: usize,
}

impl Script {
    fn new(data: Vec<u8>, sizes: Vec<usize>, block_every: usize) -> Self {
        Self {
            data: Cursor::new(data),
            sizes,
            i: 0,
            block_every,
            reads: 0,
        }
    }
}

impl Read for Script {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.reads += 1;
        if self.block_every != 0 && self.reads % self.block_every == 0 {
            return Err(io::ErrorKind::WouldBlock.into());
        }
        let take = if self.sizes.is_empty() {
            buf.len()
        } else {
            let t = self.sizes[self.i % self.sizes.len()].clamp(1, buf.len());
            self.i += 1;
            t
        };
        self.data.read(&mut buf[..take])
    }
}

fn reader_for(data: Vec<u8>, sizes: Vec<usize>, block_every: usize) -> FrameReader<Script> {
    FrameReader::with_max_len(Script::new(data, sizes, block_every), CAP)
}

/// One stream segment, as generated (before truncation).
#[derive(Debug, Clone)]
enum Seg {
    Valid(Vec<u8>),
    /// A well-formed frame whose declared length exceeds [`CAP`].
    Oversized(usize),
    /// Raw bytes that are not a frame.
    Garbage(Vec<u8>),
}

impl Seg {
    fn wire(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Seg::Valid(p) => write_frame(&mut out, p).unwrap(),
            Seg::Oversized(n) => write_frame(&mut out, &vec![b'o'; *n]).unwrap(),
            Seg::Garbage(bytes) => out.extend_from_slice(bytes),
        }
        out
    }
}

fn build(segs: &[Seg]) -> Vec<u8> {
    segs.iter().flat_map(|s| s.wire()).collect()
}

fn gen_valid_payload(g: &mut Gen) -> Vec<u8> {
    let len = g.rng().random_range(0..=CAP);
    (0..len).map(|_| *g.pick(b"abc\n\"0 ")).collect()
}

fn gen_clean_segs(g: &mut Gen) -> Vec<Seg> {
    g.vec_of(6, |g| {
        if g.rng().random_bool(0.3) {
            Seg::Oversized(g.rng().random_range(CAP + 1..CAP + 900))
        } else {
            Seg::Valid(gen_valid_payload(g))
        }
    })
}

/// Predicts the event sequence for a garbage-free stream truncated to
/// `cut` bytes — an oracle independent of the reader's implementation.
fn oracle(segs: &[Seg], cut: usize) -> Vec<Ev> {
    let mut evs = Vec::new();
    let mut off = 0usize;
    for seg in segs {
        let (hdr, total, full_ev) = match seg {
            Seg::Valid(p) => {
                let hdr = p.len().to_string().len() + 1;
                (hdr, hdr + p.len() + 1, Ev::Frame(p.clone()))
            }
            Seg::Oversized(n) => {
                let hdr = n.to_string().len() + 1;
                (hdr, hdr + n + 1, Ev::TooLarge(*n))
            }
            Seg::Garbage(_) => unreachable!("oracle is for clean streams"),
        };
        if cut == off {
            // The stream ends exactly on a frame boundary: clean close.
            evs.push(Ev::Closed);
            return evs;
        }
        if cut < off + total {
            // Mid-frame cut. An oversized frame still reports `TooLarge`
            // if its header arrived whole (the rejection happens at the
            // header, before the payload).
            if matches!(seg, Seg::Oversized(_)) && cut >= off + hdr {
                evs.push(full_ev);
            }
            evs.push(Ev::Truncated);
            return evs;
        }
        evs.push(full_ev);
        off += total;
    }
    evs.push(Ev::Closed);
    evs
}

fn gen_sizes(g: &mut Gen) -> Vec<usize> {
    g.vec_of(5, |g| g.rng().random_range(1..17))
}

/// All the replays of one stream that must agree with `reference`.
fn assert_chunking_invariant(g: &mut Gen, wire: &[u8], reference: &[Ev]) {
    assert_eq!(
        drive(reader_for(wire.to_vec(), vec![1], 0)),
        reference,
        "one byte at a time"
    );
    for _ in 0..3 {
        let sizes = gen_sizes(g);
        // Never 1: a reader whose every read would-block makes no progress.
        let block_every = *g.pick(&[0, 2, 3]);
        assert_eq!(
            drive(reader_for(wire.to_vec(), sizes.clone(), block_every)),
            reference,
            "chunk sizes {sizes:?}, WouldBlock every {block_every}"
        );
    }
}

/// Clean streams (valid + oversized frames, arbitrary truncation): every
/// chunking produces the oracle's event sequence.
#[test]
fn clean_streams_match_the_oracle_under_any_chunking() {
    Runner::new("serve.frame_torture_clean").run(
        |g| {
            let segs = gen_clean_segs(g);
            let wire = build(&segs);
            let cut = g.rng().random_range(0..=wire.len());
            (segs, wire, cut)
        },
        |(segs, wire, cut)| {
            let truncated = wire[..*cut].to_vec();
            let expected = oracle(segs, *cut);
            let reference = drive(FrameReader::with_max_len(
                Cursor::new(truncated.clone()),
                CAP,
            ));
            assert_eq!(reference, expected, "whole-stream replay vs oracle");
            let mut g = Gen::new(wire.len() as u64 ^ ((*cut as u64) << 20), 16);
            assert_chunking_invariant(&mut g, &truncated, &reference);
        },
    );
}

/// Streams with garbage interleaved (including garbage *prefixes*): the
/// reader's behavior — wherever it lands — is identical for every
/// chunking, and the stream always terminates in a terminal event.
#[test]
fn garbage_streams_are_chunking_invariant() {
    Runner::new("serve.frame_torture_garbage").run(
        |g| {
            let segs = g.vec_of(5, |g| match g.rng().random_range(0..3u32) {
                0 => Seg::Garbage({
                    let len = g.rng().random_range(1..20);
                    (0..len).map(|_| *g.pick(b"xyz{}!@:9 \n")).collect()
                }),
                1 => Seg::Oversized(g.rng().random_range(CAP + 1..CAP + 300)),
                _ => Seg::Valid(gen_valid_payload(g)),
            });
            let wire = build(&segs);
            let cut = g.rng().random_range(0..=wire.len());
            wire[..cut].to_vec()
        },
        |wire| {
            let reference = drive(FrameReader::with_max_len(Cursor::new(wire.clone()), CAP));
            assert!(
                matches!(
                    reference.last(),
                    Some(Ev::Fatal | Ev::Truncated | Ev::Closed)
                ),
                "stream must end in a terminal event, got {reference:?}"
            );
            let mut g = Gen::new(wire.len() as u64, 16);
            assert_chunking_invariant(&mut g, wire, &reference);
        },
    );
}

/// Exhaustive two-chunk splits: for a representative stream, splitting at
/// *every* byte boundary yields the same events as the unsplit replay.
#[test]
fn every_two_chunk_split_is_equivalent() {
    let segs = [
        Seg::Valid(b"first".to_vec()),
        Seg::Oversized(CAP + 37),
        Seg::Valid(Vec::new()),
        Seg::Garbage(b"?not a frame".to_vec()),
        Seg::Valid(b"never reached".to_vec()),
    ];
    let wire = build(&segs);
    let reference = drive(FrameReader::with_max_len(Cursor::new(wire.clone()), CAP));
    for split in 0..=wire.len() {
        // A two-chunk script: `split` bytes, then the rest.
        let sizes = if split == 0 {
            vec![wire.len().max(1)]
        } else {
            vec![split, wire.len() - split + 1]
        };
        let got = drive(reader_for(wire.clone(), sizes, 0));
        assert_eq!(got, reference, "split at byte {split}");
    }
}
