//! Property tests pinning the wire mapping: `decode(encode(m)) == m` for
//! random requests and responses — including strings with embedded
//! newlines, quotes, backslashes, control characters, and non-ASCII — and
//! the same identity through the frame layer.

use ic_serve::frame::{write_frame, FrameReader};
use ic_serve::proto::{
    Algo, CompareScores, ErrorCode, InstanceInfo, Request, Response, ServerStats, SpanStat,
};
use ic_testkit::{Gen, Runner};
use rand::RngExt;

/// Characters chosen to stress every escaping path: JSON two-char escapes,
/// `\u` control escapes, multi-byte UTF-8, and an astral-plane character
/// (surrogate pair in `\u` form).
const NASTY: &[char] = &[
    'a',
    'Z',
    '0',
    ' ',
    '\n',
    '\r',
    '\t',
    '"',
    '\\',
    '/',
    '\u{0}',
    '\u{1f}',
    'é',
    'β',
    'ν',
    '中',
    '☃',
    '\u{1F600}',
];

fn nasty_string(g: &mut Gen) -> String {
    let len = g.rng().random_range(0..12);
    (0..len).map(|_| *g.pick(NASTY)).collect()
}

fn finite_f64(g: &mut Gen) -> f64 {
    // Mix of "nice" values and arbitrary mantissas; Display/parse must
    // roundtrip every finite f64 bit-for-bit.
    match g.rng().random_range(0..4u32) {
        0 => 0.0,
        1 => *g.pick(&[1.0, 0.5, 0.875, 1e-9, 123456.789, f64::MIN_POSITIVE]),
        _ => g.rng().random_range(-1.0e12..1.0e12),
    }
}

fn opt<T>(g: &mut Gen, f: impl FnOnce(&mut Gen) -> T) -> Option<T> {
    if g.rng().random_bool(0.5) {
        Some(f(g))
    } else {
        None
    }
}

fn gen_request(g: &mut Gen) -> Request {
    let id = g.rng().random_range(0..1u64 << 50);
    match g.rng().random_range(0..5u32) {
        0 => Request::Load {
            id,
            name: nasty_string(g),
            dir: nasty_string(g),
        },
        1 => Request::List { id },
        2 => Request::Compare {
            id,
            left: nasty_string(g),
            right: nasty_string(g),
            algo: *g.pick(&[Algo::Signature, Algo::Exact, Algo::Both]),
            lambda: opt(g, finite_f64),
            budget_ms: opt(g, |g| g.rng().random_range(0..1u64 << 40)),
        },
        3 => Request::Stats { id },
        _ => Request::Shutdown { id },
    }
}

fn gen_response(g: &mut Gen) -> Response {
    let id = g.rng().random_range(0..1u64 << 50);
    match g.rng().random_range(0..6u32) {
        0 => Response::Loaded {
            id,
            name: nasty_string(g),
            tuples: g.rng().random_range(0..1u64 << 40),
        },
        1 => Response::Listing {
            id,
            instances: g.vec_of(4, |g| InstanceInfo {
                name: nasty_string(g),
                tuples: g.rng().random_range(0..1u64 << 40),
                null_cells: g.rng().random_range(0..1u64 << 40),
            }),
        },
        2 => Response::Compared {
            id,
            scores: CompareScores {
                signature: opt(g, finite_f64),
                exact: opt(g, finite_f64),
                pairs: opt(g, |g| g.rng().random_range(0..1u64 << 40)),
                optimal: opt(g, |g| g.rng().random_bool(0.5)),
                elapsed_us: g.rng().random_range(0..1u64 << 40),
            },
        },
        3 => Response::Stats {
            id,
            stats: ServerStats {
                requests: g.rng().random_range(0..1u64 << 40),
                completed: g.rng().random_range(0..1u64 << 40),
                overloaded: g.rng().random_range(0..1u64 << 40),
                errors: g.rng().random_range(0..1u64 << 40),
                catalog_version: g.rng().random_range(0..1u64 << 40),
                spans: g.vec_of(4, |g| SpanStat {
                    label: nasty_string(g),
                    reports: g.rng().random_range(0..1u64 << 40),
                    wall_us: g.rng().random_range(0..1u64 << 40),
                }),
            },
        },
        4 => Response::ShuttingDown { id },
        _ => Response::Error {
            id,
            code: *g.pick(&[
                ErrorCode::Malformed,
                ErrorCode::BadRequest,
                ErrorCode::UnknownInstance,
                ErrorCode::Config,
                ErrorCode::Budget,
                ErrorCode::SchemaMismatch,
                ErrorCode::Overloaded,
                ErrorCode::ShuttingDown,
                ErrorCode::Load,
                ErrorCode::Internal,
                ErrorCode::BadFrame,
            ]),
            message: nasty_string(g),
        },
    }
}

/// Encode → frame → unframe → decode is the identity on requests.
#[test]
fn request_wire_roundtrip_identity() {
    Runner::new("serve.request_wire_roundtrip").run(gen_request, |req| {
        let payload = req.encode();
        assert_eq!(&Request::decode(&payload).unwrap(), req);

        let mut wire = Vec::new();
        write_frame(&mut wire, &payload).unwrap();
        let mut reader = FrameReader::new(std::io::Cursor::new(wire));
        let framed = reader.next_frame().unwrap();
        assert_eq!(&Request::decode(&framed).unwrap(), req);
    });
}

/// Encode → frame → unframe → decode is the identity on responses; f64
/// scores survive bit-for-bit (the e2e "exact same scores" guarantee).
#[test]
fn response_wire_roundtrip_identity() {
    Runner::new("serve.response_wire_roundtrip").run(gen_response, |resp| {
        let payload = resp.encode();
        let back = Response::decode(&payload).unwrap();
        assert_eq!(&back, resp);
        if let (Response::Compared { scores: sent, .. }, Response::Compared { scores: recv, .. }) =
            (resp, &back)
        {
            assert_eq!(
                sent.signature.map(f64::to_bits),
                recv.signature.map(f64::to_bits)
            );
            assert_eq!(sent.exact.map(f64::to_bits), recv.exact.map(f64::to_bits));
        }

        let mut wire = Vec::new();
        write_frame(&mut wire, &payload).unwrap();
        let mut reader = FrameReader::new(std::io::Cursor::new(wire));
        assert_eq!(
            &Response::decode(&reader.next_frame().unwrap()).unwrap(),
            resp
        );
    });
}

/// Several frames written back-to-back — with payloads full of newlines —
/// are recovered intact and in order.
#[test]
fn frame_stream_roundtrip_identity() {
    Runner::new("serve.frame_stream_roundtrip").run(
        |g| g.vec_of(6, |g| nasty_string(g).into_bytes()),
        |payloads| {
            let mut wire = Vec::new();
            for p in payloads {
                write_frame(&mut wire, p).unwrap();
            }
            let mut reader = FrameReader::new(std::io::Cursor::new(wire));
            for p in payloads {
                assert_eq!(&reader.next_frame().unwrap(), p);
            }
        },
    );
}
