//! Byte-level encoding primitives shared by the snapshot and WAL formats:
//! little-endian integer/string codecs, a bounds-checked reader, and the
//! CRC-32 (IEEE) checksum both formats use to detect torn or corrupted
//! bytes.
//!
//! Everything here decodes *external input* (bytes read back from disk),
//! so every read path returns [`StoreError::Corrupt`] instead of
//! panicking — a half-written file must surface as an error the caller
//! can classify, never as an index-out-of-bounds.

use std::fmt;

/// Why a storage operation failed.
#[derive(Debug)]
pub enum StoreError {
    /// An underlying I/O error from the storage backend.
    Io(std::io::Error),
    /// Persisted bytes did not decode: truncated payload, bad magic,
    /// checksum mismatch past the torn-tail tolerance, or an internal
    /// inconsistency (e.g. a dictionary that re-interns to different
    /// symbols).
    Corrupt(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "storage i/o: {e}"),
            StoreError::Corrupt(what) => write!(f, "corrupt store data: {what}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            StoreError::Corrupt(_) => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// Shorthand for a [`StoreError::Corrupt`] with a static description.
pub(crate) fn corrupt(what: impl Into<String>) -> StoreError {
    StoreError::Corrupt(what.into())
}

// --- writing -------------------------------------------------------------

pub(crate) fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

pub(crate) fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// A string as `len: u32` + UTF-8 bytes.
pub(crate) fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

// --- reading -------------------------------------------------------------

/// A bounds-checked cursor over persisted bytes. Every accessor fails with
/// [`StoreError::Corrupt`] on truncation.
pub(crate) struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], StoreError> {
        if self.remaining() < n {
            return Err(corrupt(format!(
                "truncated: wanted {n} bytes, {} left",
                self.remaining()
            )));
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    pub fn u8(&mut self) -> Result<u8, StoreError> {
        Ok(self.take(1)?[0])
    }

    pub fn u32(&mut self) -> Result<u32, StoreError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub fn u64(&mut self) -> Result<u64, StoreError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], StoreError> {
        self.take(n)
    }

    pub fn str(&mut self) -> Result<&'a str, StoreError> {
        let len = self.u32()? as usize;
        std::str::from_utf8(self.take(len)?).map_err(|_| corrupt("non-UTF-8 string"))
    }
}

// --- checksum ------------------------------------------------------------

/// CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320) lookup table,
/// generated at compile time.
const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE) of `bytes` — the checksum both the snapshot header and
/// every WAL record carry.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC32_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // The canonical IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn reader_roundtrips_and_rejects_truncation() {
        let mut out = Vec::new();
        put_u8(&mut out, 7);
        put_u32(&mut out, 0xDEAD_BEEF);
        put_u64(&mut out, u64::MAX - 1);
        put_str(&mut out, "héllo");

        let mut r = Reader::new(&out);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.str().unwrap(), "héllo");
        assert!(r.is_empty());

        // Every strict prefix fails with Corrupt somewhere, never panics.
        for cut in 0..out.len() {
            let mut r = Reader::new(&out[..cut]);
            let result = (|| -> Result<(), StoreError> {
                r.u8()?;
                r.u32()?;
                r.u64()?;
                r.str()?;
                Ok(())
            })();
            assert!(matches!(result, Err(StoreError::Corrupt(_))));
        }
    }

    #[test]
    fn reader_rejects_bad_utf8() {
        let mut out = Vec::new();
        put_u32(&mut out, 2);
        out.extend_from_slice(&[0xFF, 0xFE]);
        assert!(matches!(
            Reader::new(&out).str(),
            Err(StoreError::Corrupt(_))
        ));
    }
}
