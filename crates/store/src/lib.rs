//! Durable catalog storage for interned instances.
//!
//! `ic-store` owns the on-disk format and recovery rules behind a served
//! catalog: a compact, checksummed, columnar **snapshot** of every
//! registered instance ([`encode_snapshot`] / [`decode_snapshot`]), an
//! append-only **WAL** of catalog operations ([`encode_record`] /
//! [`read_records`]), and the [`Storage`] trait that says where those
//! bytes live ([`MemStorage`] for tests, [`FileStorage`] for a data
//! directory on disk).
//!
//! The crate also owns [`CatalogOp`] — the single op vocabulary
//! (`Put`/`Patch`/`Remove`) spoken by the wire protocol, the WAL, and the
//! in-memory snapshot swap in `ic-serve`. Logging an op means capturing
//! its [`DomainDelta`] (the constants interned and nulls drawn while
//! building it) so replay reproduces a **bit-identical** catalog: every
//! `Sym` and `NullId` means the same thing after recovery, which is what
//! keeps comparison scores stable across a restart.
//!
//! Recovery is torn-tail tolerant: a truncated or checksum-failing final
//! WAL record — the signature of a crash mid-append — is dropped, never a
//! panic. Anything else that fails to decode is genuine corruption and
//! surfaces as [`StoreError::Corrupt`].

#![warn(missing_docs)]

mod format;
mod snapshot;
mod storage;
mod wal;

pub use format::{crc32, StoreError};
pub use snapshot::{
    decode_snapshot, encode_snapshot, CatalogState, SNAPSHOT_MAGIC, SNAPSHOT_VERSION,
};
pub use storage::{FileStorage, MemStorage, Storage};
pub use wal::{encode_record, read_records, CatalogOp, DomainDelta, WalRecord};
