//! The columnar snapshot format: one self-contained, checksummed file
//! holding the full catalog state — schema, value dictionary, null
//! watermark, and every instance as per-relation columnar tuple arrays.
//!
//! ## Layout
//!
//! ```text
//! magic    [8]  "ICSTSNAP"
//! version  u32  format version (1)
//! crc32    u32  CRC-32 (IEEE) of the payload
//! len      u64  payload length in bytes
//! payload:
//!   applied     u64                              (catalog version this snapshot reflects)
//!   schema      nrels:u32, per rel { name:str, arity:u32, attr:str × arity }
//!   dictionary  count:u32, str × count          (constant strings in Sym order)
//!   nulls       u32                              (null watermark)
//!   instances   count:u32, instance-block × count
//! ```
//!
//! An instance block stores each relation **columnar**: the tuple-id
//! array, then per attribute a labeled-null tag bitmap followed by the
//! packed `u32` payload column (a `Sym` index or a `NullId`, per the tag
//! bit). Columns are contiguous and offsets are computable from counts
//! alone, so an mmap'd reader can jump to any column without touching the
//! rows — and `u32` columns decode with no per-cell branching beyond the
//! tag-bit test.
//!
//! ```text
//! instance-block:
//!   name      str
//!   nrels     u32
//!   id_bound  u64
//!   per relation {
//!     arity  u32
//!     count  u64
//!     ids    u32 × count                         (storage order)
//!     per attribute {
//!       tags     byte × ceil(count/8)            (bit i set ⇒ value i is a null)
//!       payload  u32 × count
//!     }
//!   }
//! ```
//!
//! ## Identity guarantees
//!
//! Decoding re-interns the dictionary **in symbol order** and verifies each
//! string lands on its original index, so every `Sym` in every column means
//! exactly what it meant when written; tuple ids, per-relation storage
//! order and burned (removed) ids round-trip through
//! [`Instance::restore`]. A reloaded catalog is therefore bit-identical to
//! the serialized one as far as any downstream algorithm can observe —
//! including the greedy signature matcher, whose scores depend on symbol
//! identity and id-ordered tie-breaks.

use crate::format::{corrupt, crc32, put_str, put_u32, put_u64, Reader, StoreError};
use ic_model::{
    Catalog, Instance, NullId, RelId, RelationSchema, Schema, Sym, Tuple, TupleId, Value,
};

/// Magic prefix of a snapshot file.
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"ICSTSNAP";
/// Current snapshot format version.
pub const SNAPSHOT_VERSION: u32 = 1;

/// A decoded snapshot: the catalog's value domains plus every named
/// instance, in name order.
#[derive(Debug)]
pub struct CatalogState {
    /// The catalog version (mutation count) this snapshot reflects. WAL
    /// records carry the version their op produced, so replay can skip
    /// records a crash left behind after they were already folded into
    /// the snapshot (install-then-truncate is not atomic as a pair).
    pub version: u64,
    /// The restored value domains (schema, interner, null watermark).
    pub catalog: Catalog,
    /// The restored instances as `(name, instance)` pairs.
    pub instances: Vec<(String, Instance)>,
}

/// Encodes the full catalog state into one checksummed snapshot buffer.
pub fn encode_snapshot<'a>(
    version: u64,
    catalog: &Catalog,
    instances: impl IntoIterator<Item = (&'a str, &'a Instance)>,
) -> Vec<u8> {
    let mut payload = Vec::new();
    put_u64(&mut payload, version);

    let schema = catalog.schema();
    put_u32(&mut payload, schema.len() as u32);
    for rel in schema.rel_ids() {
        let r = schema.relation(rel);
        put_str(&mut payload, r.name());
        put_u32(&mut payload, r.arity() as u32);
        for attr in r.attrs() {
            put_str(&mut payload, attr);
        }
    }

    let interner = catalog.interner();
    put_u32(&mut payload, interner.len() as u32);
    for i in 0..interner.len() as u32 {
        put_str(&mut payload, interner.resolve(Sym(i)));
    }
    put_u32(&mut payload, catalog.nulls_allocated());

    let instances: Vec<_> = instances.into_iter().collect();
    put_u32(&mut payload, instances.len() as u32);
    for (name, instance) in instances {
        debug_assert_eq!(name, instance.name());
        encode_instance(&mut payload, instance);
    }

    let mut out = Vec::with_capacity(24 + payload.len());
    out.extend_from_slice(SNAPSHOT_MAGIC);
    put_u32(&mut out, SNAPSHOT_VERSION);
    put_u32(&mut out, crc32(&payload));
    put_u64(&mut out, payload.len() as u64);
    out.extend_from_slice(&payload);
    out
}

/// Decodes a snapshot buffer, verifying magic, version and checksum, and
/// restoring symbols, null watermark, tuple ids and storage order exactly
/// (see the module docs above).
pub fn decode_snapshot(bytes: &[u8]) -> Result<CatalogState, StoreError> {
    let mut r = Reader::new(bytes);
    if r.bytes(8)? != SNAPSHOT_MAGIC {
        return Err(corrupt("bad snapshot magic"));
    }
    let version = r.u32()?;
    if version != SNAPSHOT_VERSION {
        return Err(corrupt(format!("unsupported snapshot version {version}")));
    }
    let checksum = r.u32()?;
    let len = r.u64()? as usize;
    if r.remaining() != len {
        return Err(corrupt(format!(
            "snapshot payload length mismatch: header says {len}, have {}",
            r.remaining()
        )));
    }
    let payload = r.bytes(len)?;
    if crc32(payload) != checksum {
        return Err(corrupt("snapshot checksum mismatch"));
    }

    let mut r = Reader::new(payload);
    let state_version = r.u64()?;
    let nrels = r.u32()?;
    let mut schema = Schema::new();
    for _ in 0..nrels {
        let name = r.str()?.to_string();
        let arity = r.u32()?;
        let attrs: Vec<String> = (0..arity)
            .map(|_| r.str().map(str::to_string))
            .collect::<Result<_, _>>()?;
        if schema.rel(&name).is_some() {
            return Err(corrupt(format!("duplicate relation {name:?} in schema")));
        }
        let attr_refs: Vec<&str> = attrs.iter().map(String::as_str).collect();
        if attr_refs.len()
            != attrs
                .iter()
                .collect::<std::collections::BTreeSet<_>>()
                .len()
        {
            return Err(corrupt(format!("duplicate attribute in relation {name:?}")));
        }
        schema.add_relation(RelationSchema::new(name, &attr_refs));
    }

    let mut catalog = Catalog::new(schema);
    let dict = r.u32()?;
    for i in 0..dict {
        let s = r.str()?;
        let sym = catalog.sym(s);
        if sym.0 != i {
            return Err(corrupt(format!(
                "dictionary entry {i} re-interned to symbol {} ({s:?} duplicated?)",
                sym.0
            )));
        }
    }
    catalog.advance_nulls(r.u32()?);

    let count = r.u32()?;
    let mut instances = Vec::with_capacity(count as usize);
    for _ in 0..count {
        let instance = decode_instance(&mut r, &catalog)?;
        instances.push((instance.name().to_string(), instance));
    }
    if !r.is_empty() {
        return Err(corrupt("trailing bytes after snapshot payload"));
    }
    Ok(CatalogState {
        version: state_version,
        catalog,
        instances,
    })
}

/// Encodes one instance as a columnar block (shared with WAL `Put`
/// records).
pub(crate) fn encode_instance(out: &mut Vec<u8>, instance: &Instance) {
    put_str(out, instance.name());
    put_u32(out, instance.num_relations() as u32);
    put_u64(out, instance.id_bound() as u64);
    for rel_idx in 0..instance.num_relations() {
        let tuples = instance.tuples(RelId(rel_idx as u16));
        let arity = tuples.first().map_or(0, Tuple::arity);
        put_u32(out, arity as u32);
        put_u64(out, tuples.len() as u64);
        for t in tuples {
            put_u32(out, t.id().0);
        }
        for a in 0..arity {
            // Null-tag bitmap, then the packed payload column.
            let mut tags = vec![0u8; tuples.len().div_ceil(8)];
            for (i, t) in tuples.iter().enumerate() {
                if t.values()[a].is_null() {
                    tags[i / 8] |= 1 << (i % 8);
                }
            }
            out.extend_from_slice(&tags);
            for t in tuples {
                let raw = match t.values()[a] {
                    Value::Const(s) => s.0,
                    Value::Null(n) => n.0,
                };
                put_u32(out, raw);
            }
        }
    }
}

/// Decodes one instance block, validating ids and value domains against
/// `catalog`.
pub(crate) fn decode_instance(
    r: &mut Reader<'_>,
    catalog: &Catalog,
) -> Result<Instance, StoreError> {
    let name = r.str()?.to_string();
    let nrels = r.u32()? as usize;
    let id_bound = r.u64()? as usize;
    let syms = catalog.interner().len() as u32;
    let nulls = catalog.nulls_allocated();

    let mut triples: Vec<(RelId, TupleId, Vec<Value>)> = Vec::new();
    for rel_idx in 0..nrels {
        let rel =
            RelId(u16::try_from(rel_idx).map_err(|_| corrupt("relation index overflows u16"))?);
        let arity = r.u32()? as usize;
        let count = r.u64()? as usize;
        if count > r.remaining() / 4 {
            return Err(corrupt("tuple count exceeds remaining bytes"));
        }
        let ids: Vec<u32> = (0..count).map(|_| r.u32()).collect::<Result<_, _>>()?;
        let mut columns: Vec<Vec<Value>> = Vec::with_capacity(arity);
        for _ in 0..arity {
            let tags = r.bytes(count.div_ceil(8))?.to_vec();
            let mut column = Vec::with_capacity(count);
            for (i, _) in ids.iter().enumerate() {
                let raw = r.u32()?;
                let value = if tags[i / 8] & (1 << (i % 8)) != 0 {
                    if raw >= nulls {
                        return Err(corrupt(format!("null id {raw} beyond watermark {nulls}")));
                    }
                    Value::Null(NullId(raw))
                } else {
                    if raw >= syms {
                        return Err(corrupt(format!(
                            "symbol {raw} beyond dictionary size {syms}"
                        )));
                    }
                    Value::Const(Sym(raw))
                };
                column.push(value);
            }
            columns.push(column);
        }
        for (i, id) in ids.into_iter().enumerate() {
            let values: Vec<Value> = columns.iter().map(|c| c[i]).collect();
            triples.push((rel, TupleId(id), values));
        }
    }
    Instance::restore(name, nrels, id_bound, triples)
        .map_err(|e| corrupt(format!("instance restore: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ic_model::AttrId;

    fn build_state() -> (Catalog, Vec<(String, Instance)>) {
        let mut schema = Schema::new();
        schema.add_relation(RelationSchema::new("Conf", &["Name", "Year"]));
        schema.add_relation(RelationSchema::new("Org", &["Who"]));
        let mut cat = Catalog::new(schema);
        let conf = cat.schema().rel("Conf").unwrap();
        let org = cat.schema().rel("Org").unwrap();

        let mut a = Instance::new("a", &cat);
        let vldb = cat.konst("VLDB");
        let y = cat.konst("1975");
        let n = cat.fresh_null();
        a.insert(conf, vec![vldb, y]);
        a.insert(conf, vec![vldb, n]);
        a.insert(org, vec![n]);

        let mut b = Instance::new("b", &cat);
        let sig = cat.konst("SIGMOD");
        let m = cat.fresh_null();
        let burned = b.insert(conf, vec![sig, m]);
        b.insert(conf, vec![sig, y]);
        b.remove(burned); // leave a burned id behind

        (cat, vec![("a".into(), a), ("b".into(), b)])
    }

    fn encode_built() -> (Catalog, Vec<(String, Instance)>, Vec<u8>) {
        let (cat, instances) = build_state();
        let bytes = encode_snapshot(42, &cat, instances.iter().map(|(n, i)| (n.as_str(), i)));
        (cat, instances, bytes)
    }

    #[test]
    fn snapshot_roundtrips_domains_ids_and_order() {
        let (cat, instances, bytes) = encode_built();
        let state = decode_snapshot(&bytes).unwrap();

        assert_eq!(state.version, 42);
        assert!(state.catalog.schema().compatible_with(cat.schema()));
        assert_eq!(state.catalog.interner().len(), cat.interner().len());
        for i in 0..cat.interner().len() as u32 {
            assert_eq!(state.catalog.resolve(Sym(i)), cat.resolve(Sym(i)));
        }
        assert_eq!(state.catalog.nulls_allocated(), cat.nulls_allocated());

        assert_eq!(state.instances.len(), instances.len());
        for ((name, orig), (dname, dec)) in instances.iter().zip(&state.instances) {
            assert_eq!(name, dname);
            assert_eq!(dec.id_bound(), orig.id_bound());
            assert_eq!(dec.num_tuples(), orig.num_tuples());
            for id in 0..orig.id_bound() as u32 {
                assert_eq!(dec.tuple(TupleId(id)), orig.tuple(TupleId(id)));
                assert_eq!(dec.loc(TupleId(id)), orig.loc(TupleId(id)));
            }
        }
        // Values resolve to the same strings through the restored catalog.
        let a = &state.instances[0].1;
        assert_eq!(
            state
                .catalog
                .render(a.tuple(TupleId(0)).unwrap().value(AttrId(0))),
            "VLDB"
        );
    }

    #[test]
    fn snapshot_rejects_flipped_bits_and_bad_headers() {
        let (_, _, bytes) = encode_built();
        decode_snapshot(&bytes).unwrap();

        // Any single flipped payload bit fails the checksum.
        let mut corrupted = bytes.clone();
        let last = corrupted.len() - 1;
        corrupted[last] ^= 0x40;
        assert!(matches!(
            decode_snapshot(&corrupted),
            Err(StoreError::Corrupt(_))
        ));

        // Bad magic, bad version, truncated payload.
        let mut bad_magic = bytes.clone();
        bad_magic[0] ^= 0xFF;
        assert!(decode_snapshot(&bad_magic).is_err());
        let mut bad_version = bytes.clone();
        bad_version[8] = 99;
        assert!(decode_snapshot(&bad_version).is_err());
        for cut in 0..bytes.len() {
            assert!(
                decode_snapshot(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes must not decode"
            );
        }
    }

    #[test]
    fn empty_catalog_roundtrips() {
        let cat = Catalog::new(Schema::single("R", &["A"]));
        let bytes = encode_snapshot(0, &cat, std::iter::empty());
        let state = decode_snapshot(&bytes).unwrap();
        assert_eq!(state.version, 0);
        assert!(state.instances.is_empty());
        assert_eq!(state.catalog.interner().len(), 0);
    }
}
