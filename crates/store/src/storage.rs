//! The [`Storage`] trait — where snapshot and WAL bytes live — with an
//! in-memory backend for tests and a file backend for production.
//!
//! The trait deliberately traffics in opaque byte buffers: encoding and
//! recovery rules live in [`crate::snapshot`] and [`crate::wal`], so a
//! backend only has to answer four questions — read the snapshot, read
//! the WAL, append one framed record durably, and atomically install a
//! new snapshot (which truncates the WAL, i.e. compaction).

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

/// A durability backend for the catalog: one snapshot blob plus an
/// append-only WAL byte stream.
///
/// Contract: `append_wal` must be durable (flushed) when it returns;
/// `install_snapshot` must atomically replace the snapshot **and**
/// truncate the WAL — a crash between the two must never leave a new
/// snapshot paired with the old WAL, or replay would double-apply ops.
pub trait Storage: Send {
    /// Reads the current snapshot bytes, or `None` if none was installed.
    fn read_snapshot(&mut self) -> io::Result<Option<Vec<u8>>>;

    /// Atomically installs `bytes` as the new snapshot and truncates the
    /// WAL (compaction).
    fn install_snapshot(&mut self, bytes: &[u8]) -> io::Result<()>;

    /// Reads the whole WAL byte stream (empty if nothing was appended).
    fn read_wal(&mut self) -> io::Result<Vec<u8>>;

    /// Durably appends one framed record to the WAL.
    fn append_wal(&mut self, record: &[u8]) -> io::Result<()>;
}

/// Volatile in-memory storage for tests: byte-for-byte the same contract
/// as [`FileStorage`], plus accessors for crash simulation (snapshot the
/// buffers, truncate the WAL mid-record, reopen from the copies).
#[derive(Debug, Default, Clone)]
pub struct MemStorage {
    snapshot: Option<Vec<u8>>,
    wal: Vec<u8>,
}

impl MemStorage {
    /// Creates empty storage.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates storage from captured buffers — the crash-simulation
    /// entry point: pair a copied snapshot with a truncated WAL and
    /// reopen.
    pub fn from_parts(snapshot: Option<Vec<u8>>, wal: Vec<u8>) -> Self {
        Self { snapshot, wal }
    }

    /// The current snapshot bytes, if any.
    pub fn snapshot_bytes(&self) -> Option<&[u8]> {
        self.snapshot.as_deref()
    }

    /// The current WAL bytes.
    pub fn wal_bytes(&self) -> &[u8] {
        &self.wal
    }
}

impl Storage for MemStorage {
    fn read_snapshot(&mut self) -> io::Result<Option<Vec<u8>>> {
        Ok(self.snapshot.clone())
    }

    fn install_snapshot(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.snapshot = Some(bytes.to_vec());
        self.wal.clear();
        Ok(())
    }

    fn read_wal(&mut self) -> io::Result<Vec<u8>> {
        Ok(self.wal.clone())
    }

    fn append_wal(&mut self, record: &[u8]) -> io::Result<()> {
        self.wal.extend_from_slice(record);
        Ok(())
    }
}

/// A shared handle to in-memory storage: lets a test hand ownership of
/// the backend to a catalog while keeping a handle to inspect (or
/// crash-copy) the buffers afterwards.
impl Storage for std::sync::Arc<std::sync::Mutex<MemStorage>> {
    fn read_snapshot(&mut self) -> io::Result<Option<Vec<u8>>> {
        self.lock().unwrap().read_snapshot()
    }

    fn install_snapshot(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.lock().unwrap().install_snapshot(bytes)
    }

    fn read_wal(&mut self) -> io::Result<Vec<u8>> {
        self.lock().unwrap().read_wal()
    }

    fn append_wal(&mut self, record: &[u8]) -> io::Result<()> {
        self.lock().unwrap().append_wal(record)
    }
}

/// File-backed storage: `catalog.snap` + `catalog.wal` inside one data
/// directory.
///
/// Snapshot installs write to a temp file, fsync, and rename over the old
/// snapshot (the commit point), then truncate the WAL. The catalog only
/// compacts at open time, before any appends, so a crash between rename
/// and truncate leaves a new snapshot next to a WAL of already-folded
/// records — the next open replays them onto the snapshot they came
/// from, which re-produces the same state (ops are deterministic and the
/// domain-delta base checks make an out-of-order replay fail loudly
/// rather than corrupt silently).
#[derive(Debug)]
pub struct FileStorage {
    dir: PathBuf,
    wal: Option<File>,
}

const SNAP_FILE: &str = "catalog.snap";
const WAL_FILE: &str = "catalog.wal";

impl FileStorage {
    /// Opens (creating if needed) the data directory.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(Self { dir, wal: None })
    }

    /// The data directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn wal_handle(&mut self) -> io::Result<&mut File> {
        if self.wal.is_none() {
            self.wal = Some(
                OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(self.dir.join(WAL_FILE))?,
            );
        }
        Ok(self.wal.as_mut().expect("just opened"))
    }

    /// Best-effort directory fsync so renames survive power loss (no-op
    /// where directories cannot be opened for sync).
    fn sync_dir(&self) {
        if let Ok(d) = File::open(&self.dir) {
            let _ = d.sync_all();
        }
    }
}

impl Storage for FileStorage {
    fn read_snapshot(&mut self) -> io::Result<Option<Vec<u8>>> {
        match std::fs::read(self.dir.join(SNAP_FILE)) {
            Ok(bytes) => Ok(Some(bytes)),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e),
        }
    }

    fn install_snapshot(&mut self, bytes: &[u8]) -> io::Result<()> {
        let tmp = self.dir.join(format!("{SNAP_FILE}.tmp"));
        {
            let mut f = File::create(&tmp)?;
            f.write_all(bytes)?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, self.dir.join(SNAP_FILE))?;
        self.sync_dir();
        // Truncate the WAL now that its records are folded in; the handle
        // is reopened lazily in append mode on the next append.
        let wal = File::create(self.dir.join(WAL_FILE))?;
        wal.sync_all()?;
        self.wal = None;
        Ok(())
    }

    fn read_wal(&mut self) -> io::Result<Vec<u8>> {
        match File::open(self.dir.join(WAL_FILE)) {
            Ok(mut f) => {
                let mut bytes = Vec::new();
                f.read_to_end(&mut bytes)?;
                Ok(bytes)
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(Vec::new()),
            Err(e) => Err(e),
        }
    }

    fn append_wal(&mut self, record: &[u8]) -> io::Result<()> {
        let f = self.wal_handle()?;
        f.write_all(record)?;
        f.sync_data()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "ic-store-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn exercise(storage: &mut dyn Storage) {
        assert_eq!(storage.read_snapshot().unwrap(), None);
        assert!(storage.read_wal().unwrap().is_empty());

        storage.append_wal(b"rec1").unwrap();
        storage.append_wal(b"rec2").unwrap();
        assert_eq!(storage.read_wal().unwrap(), b"rec1rec2");

        storage.install_snapshot(b"snapA").unwrap();
        assert_eq!(
            storage.read_snapshot().unwrap().as_deref(),
            Some(&b"snapA"[..])
        );
        assert!(
            storage.read_wal().unwrap().is_empty(),
            "install truncates WAL"
        );

        storage.append_wal(b"rec3").unwrap();
        assert_eq!(storage.read_wal().unwrap(), b"rec3");
        storage.install_snapshot(b"snapB").unwrap();
        assert_eq!(
            storage.read_snapshot().unwrap().as_deref(),
            Some(&b"snapB"[..])
        );
        assert!(storage.read_wal().unwrap().is_empty());
    }

    #[test]
    fn mem_storage_contract() {
        exercise(&mut MemStorage::new());
    }

    #[test]
    fn file_storage_contract_and_reopen() {
        let dir = temp_dir("contract");
        exercise(&mut FileStorage::open(&dir).unwrap());

        // A fresh handle over the same directory sees the state.
        let mut reopened = FileStorage::open(&dir).unwrap();
        assert_eq!(
            reopened.read_snapshot().unwrap().as_deref(),
            Some(&b"snapB"[..])
        );
        assert!(reopened.read_wal().unwrap().is_empty());
        reopened.append_wal(b"later").unwrap();
        assert_eq!(reopened.read_wal().unwrap(), b"later");

        std::fs::remove_dir_all(&dir).ok();
    }
}
