//! The append-only WAL of catalog operations, and the one op vocabulary
//! ([`CatalogOp`]) shared by the wire protocol, the WAL, and the in-memory
//! snapshot swap.
//!
//! ## Record framing
//!
//! The WAL is a bare stream of self-checking records (the snapshot file
//! carries the magic/version header for the pair):
//!
//! ```text
//! record: len:u32 | crc32:u32 | payload(len)
//! ```
//!
//! ## Record payload
//!
//! Every record carries the catalog version its op produced and the
//! **domain delta** it introduced — the constants interned and nulls
//! drawn while building the op — followed by the op itself:
//!
//! ```text
//! seq:u64             catalog version this op produced
//! tag:u8              0 = Put, 1 = Patch, 2 = Remove
//! domain              base_syms:u32, new:u32, str × new, nulls_after:u32
//! name                str
//! Put                 instance-block (see crate::snapshot)
//! Patch               nops:u32, op × nops
//! Remove              (nothing)
//! ```
//!
//! The `seq` makes replay idempotent against the snapshot: compaction
//! installs the snapshot (the commit point) and *then* truncates the WAL,
//! so a crash in between leaves already-folded records behind —
//! [`read_records`] skips every record at or below the snapshot's version
//! instead of double-applying it.
//!
//! Replaying a record first applies the domain delta — re-interning the
//! new strings *in order* after verifying the interner is at exactly
//! `base_syms` entries — so every `Sym`/`NullId` the op references means
//! what it meant when logged, regardless of how the op was originally
//! built. A replayed catalog is bit-identical to the logged one.
//!
//! ## Torn-tail tolerance
//!
//! [`read_records`] stops at the first record whose frame is incomplete or
//! whose checksum fails — the signature of a crash mid-append — and
//! reports the length of the valid prefix so the caller can truncate the
//! torn bytes away (compaction does). A checksum-*valid* record that does
//! not decode is real corruption and is an error, never a panic.

use crate::format::{corrupt, crc32, put_str, put_u32, put_u8, Reader, StoreError};
use crate::snapshot::{decode_instance, encode_instance};
use ic_core::{Delta, DeltaOp};
use ic_model::{AttrId, Catalog, Instance, NullId, RelId, Sym, TupleId, Value};

/// One catalog mutation — the single op vocabulary spoken by the wire
/// protocol, the WAL, and `ServeCatalog::apply` in `ic-serve`.
///
/// `load`/`register`/replace all materialize to [`CatalogOp::Put`] (a
/// CSV load is *not* replayed from its directory — the files may have
/// changed — but from the instance it produced).
#[derive(Debug, Clone)]
pub enum CatalogOp {
    /// Register or replace the instance under `name`.
    Put {
        /// The catalog entry name.
        name: String,
        /// The instance, built against the catalog's value domains.
        instance: Instance,
    },
    /// Apply a tuple-level delta to the instance under `name`.
    Patch {
        /// The catalog entry name.
        name: String,
        /// The edits, in order.
        delta: Delta,
    },
    /// Remove the instance under `name`.
    Remove {
        /// The catalog entry name.
        name: String,
    },
}

impl CatalogOp {
    /// The catalog entry name the op targets.
    pub fn name(&self) -> &str {
        match self {
            CatalogOp::Put { name, .. }
            | CatalogOp::Patch { name, .. }
            | CatalogOp::Remove { name } => name,
        }
    }
}

/// The value-domain growth an op introduced: everything needed to make
/// the op's `Sym`s and `NullId`s mean the same thing on replay.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DomainDelta {
    /// Interner length before the op ran.
    pub base_syms: u32,
    /// Strings interned by the op, in symbol order (`base_syms`,
    /// `base_syms + 1`, …).
    pub new_strings: Vec<String>,
    /// Null watermark after the op ran.
    pub nulls_after: u32,
}

impl DomainDelta {
    /// Captures the growth from `base_syms` interned strings to
    /// `after`'s current domains.
    pub fn capture(base_syms: usize, after: &Catalog) -> Self {
        let interner = after.interner();
        Self {
            base_syms: base_syms as u32,
            new_strings: (base_syms as u32..interner.len() as u32)
                .map(|i| interner.resolve(Sym(i)).to_string())
                .collect(),
            nulls_after: after.nulls_allocated(),
        }
    }

    /// Replays the growth onto `catalog`, verifying that every new string
    /// lands on exactly the symbol it had when captured. A catalog that is
    /// not at `base_syms` entries — replay out of order, or a dictionary
    /// drift — is corruption, not a panic.
    pub fn apply(&self, catalog: &mut Catalog) -> Result<(), StoreError> {
        if catalog.interner().len() != self.base_syms as usize {
            return Err(corrupt(format!(
                "domain delta expects {} interned symbols, catalog has {}",
                self.base_syms,
                catalog.interner().len()
            )));
        }
        for (i, s) in self.new_strings.iter().enumerate() {
            let sym = catalog.sym(s);
            let expected = self.base_syms + i as u32;
            if sym.0 != expected {
                return Err(corrupt(format!(
                    "domain string {s:?} re-interned to symbol {} (expected {expected})",
                    sym.0
                )));
            }
        }
        catalog.advance_nulls(self.nulls_after);
        Ok(())
    }
}

/// One WAL entry: an op plus the domain growth it introduced.
#[derive(Debug, Clone)]
pub struct WalRecord {
    /// The catalog version this op produced (see the module docs on
    /// idempotent replay).
    pub seq: u64,
    /// The domain growth to replay before the op.
    pub domain: DomainDelta,
    /// The op itself.
    pub op: CatalogOp,
}

const TAG_PUT: u8 = 0;
const TAG_PATCH: u8 = 1;
const TAG_REMOVE: u8 = 2;

const OP_INSERT: u8 = 0;
const OP_DELETE: u8 = 1;
const OP_MODIFY: u8 = 2;

const VAL_CONST: u8 = 0;
const VAL_NULL: u8 = 1;

fn put_value(out: &mut Vec<u8>, v: Value) {
    match v {
        Value::Const(s) => {
            put_u8(out, VAL_CONST);
            put_u32(out, s.0);
        }
        Value::Null(n) => {
            put_u8(out, VAL_NULL);
            put_u32(out, n.0);
        }
    }
}

fn read_value(r: &mut Reader<'_>) -> Result<Value, StoreError> {
    let tag = r.u8()?;
    let raw = r.u32()?;
    match tag {
        VAL_CONST => Ok(Value::Const(Sym(raw))),
        VAL_NULL => Ok(Value::Null(NullId(raw))),
        other => Err(corrupt(format!("unknown value tag {other}"))),
    }
}

/// Encodes one record as a framed buffer ready for
/// [`crate::Storage::append_wal`].
pub fn encode_record(seq: u64, domain: &DomainDelta, op: &CatalogOp) -> Vec<u8> {
    let mut payload = Vec::new();
    let tag = match op {
        CatalogOp::Put { .. } => TAG_PUT,
        CatalogOp::Patch { .. } => TAG_PATCH,
        CatalogOp::Remove { .. } => TAG_REMOVE,
    };
    crate::format::put_u64(&mut payload, seq);
    put_u8(&mut payload, tag);
    put_u32(&mut payload, domain.base_syms);
    put_u32(&mut payload, domain.new_strings.len() as u32);
    for s in &domain.new_strings {
        put_str(&mut payload, s);
    }
    put_u32(&mut payload, domain.nulls_after);
    put_str(&mut payload, op.name());
    match op {
        CatalogOp::Put { instance, .. } => encode_instance(&mut payload, instance),
        CatalogOp::Patch { delta, .. } => {
            put_u32(&mut payload, delta.ops.len() as u32);
            for op in &delta.ops {
                match op {
                    DeltaOp::Insert { rel, values } => {
                        put_u8(&mut payload, OP_INSERT);
                        put_u32(&mut payload, rel.0 as u32);
                        put_u32(&mut payload, values.len() as u32);
                        for &v in values {
                            put_value(&mut payload, v);
                        }
                    }
                    DeltaOp::Delete { id } => {
                        put_u8(&mut payload, OP_DELETE);
                        put_u32(&mut payload, id.0);
                    }
                    DeltaOp::Modify { id, attr, value } => {
                        put_u8(&mut payload, OP_MODIFY);
                        put_u32(&mut payload, id.0);
                        put_u32(&mut payload, attr.0 as u32);
                        put_value(&mut payload, *value);
                    }
                }
            }
        }
        CatalogOp::Remove { .. } => {}
    }

    let mut out = Vec::with_capacity(8 + payload.len());
    put_u32(&mut out, payload.len() as u32);
    put_u32(&mut out, crc32(&payload));
    out.extend_from_slice(&payload);
    out
}

fn decode_payload(payload: &[u8], catalog_for_put: &Catalog) -> Result<WalRecord, StoreError> {
    let mut r = Reader::new(payload);
    let seq = r.u64()?;
    let tag = r.u8()?;
    let base_syms = r.u32()?;
    let n_new = r.u32()?;
    let new_strings: Vec<String> = (0..n_new)
        .map(|_| r.str().map(str::to_string))
        .collect::<Result<_, _>>()?;
    let nulls_after = r.u32()?;
    let domain = DomainDelta {
        base_syms,
        new_strings,
        nulls_after,
    };
    let name = r.str()?.to_string();
    let op = match tag {
        TAG_PUT => CatalogOp::Put {
            name,
            instance: decode_instance(&mut r, catalog_for_put)?,
        },
        TAG_PATCH => {
            let nops = r.u32()?;
            let mut ops = Vec::with_capacity(nops.min(1 << 20) as usize);
            for _ in 0..nops {
                let op = match r.u8()? {
                    OP_INSERT => {
                        let rel = r.u32()?;
                        let n = r.u32()?;
                        let values: Vec<Value> = (0..n)
                            .map(|_| read_value(&mut r))
                            .collect::<Result<_, _>>()?;
                        DeltaOp::Insert {
                            rel: RelId(
                                u16::try_from(rel)
                                    .map_err(|_| corrupt("relation id overflows u16"))?,
                            ),
                            values,
                        }
                    }
                    OP_DELETE => DeltaOp::Delete {
                        id: TupleId(r.u32()?),
                    },
                    OP_MODIFY => {
                        let id = TupleId(r.u32()?);
                        let attr = r.u32()?;
                        DeltaOp::Modify {
                            id,
                            attr: AttrId(
                                u16::try_from(attr)
                                    .map_err(|_| corrupt("attribute id overflows u16"))?,
                            ),
                            value: read_value(&mut r)?,
                        }
                    }
                    other => return Err(corrupt(format!("unknown delta op tag {other}"))),
                };
                ops.push(op);
            }
            CatalogOp::Patch {
                name,
                delta: Delta::new(ops),
            }
        }
        TAG_REMOVE => CatalogOp::Remove { name },
        other => return Err(corrupt(format!("unknown record tag {other}"))),
    };
    if !r.is_empty() {
        return Err(corrupt("trailing bytes after WAL record payload"));
    }
    Ok(WalRecord { seq, domain, op })
}

/// Parses a WAL byte stream into records, replaying each record's domain
/// delta onto `catalog` as it goes (a `Put` instance block can only be
/// decoded against the domains in force when it was logged). Records at
/// or below `skip_through` — already folded into the snapshot by a
/// compaction whose WAL truncation was lost to a crash — are skipped
/// whole, domain delta included.
///
/// Returns the surviving records plus the byte length of the valid
/// prefix. A truncated or checksum-failing record — the torn tail of a
/// crashed append — ends parsing there; everything before it is returned,
/// the torn bytes are excluded from the prefix length, and **no error**
/// is raised. A checksum-valid record that fails to decode, or a
/// non-increasing sequence number, is genuine corruption and errors out.
pub fn read_records(
    bytes: &[u8],
    catalog: &mut Catalog,
    skip_through: u64,
) -> Result<(Vec<WalRecord>, usize), StoreError> {
    let mut records = Vec::new();
    let mut pos = 0usize;
    let mut last_seq: Option<u64> = None;
    loop {
        let rest = &bytes[pos..];
        if rest.len() < 8 {
            break; // empty or torn frame header
        }
        let len = u32::from_le_bytes(rest[..4].try_into().unwrap()) as usize;
        let checksum = u32::from_le_bytes(rest[4..8].try_into().unwrap());
        if rest.len() < 8 + len {
            break; // torn payload
        }
        let payload = &rest[8..8 + len];
        if crc32(payload) != checksum {
            break; // torn or bit-rotted tail: drop it and stop
        }
        let (seq, domain) = peek_header(payload)?;
        if last_seq.is_some_and(|last| seq <= last) {
            return Err(corrupt(format!(
                "WAL sequence went backwards ({seq} after {})",
                last_seq.unwrap()
            )));
        }
        last_seq = Some(seq);
        pos += 8 + len;
        if seq <= skip_through {
            continue; // already folded into the snapshot
        }
        // The domain delta must be in force before the instance block can
        // decode its symbols; applying before the full decode is safe
        // because a decode failure aborts the whole replay.
        domain.apply(catalog)?;
        records.push(decode_payload(payload, catalog)?);
    }
    Ok((records, pos))
}

/// Decodes just the seq + domain-delta prefix of a record payload.
fn peek_header(payload: &[u8]) -> Result<(u64, DomainDelta), StoreError> {
    let mut r = Reader::new(payload);
    let seq = r.u64()?;
    let _tag = r.u8()?;
    let base_syms = r.u32()?;
    let n_new = r.u32()?;
    let new_strings: Vec<String> = (0..n_new)
        .map(|_| r.str().map(str::to_string))
        .collect::<Result<_, _>>()?;
    let nulls_after = r.u32()?;
    Ok((
        seq,
        DomainDelta {
            base_syms,
            new_strings,
            nulls_after,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ic_model::Schema;

    fn catalog() -> Catalog {
        Catalog::new(Schema::single("R", &["A", "B"]))
    }

    fn put_record(seq: u64, cat: &mut Catalog, name: &str, rows: &[(&str, &str)]) -> Vec<u8> {
        let base = cat.interner().len();
        let mut inst = Instance::new(name, cat);
        for (a, b) in rows {
            let (va, vb) = (cat.konst(a), cat.konst(b));
            inst.insert(RelId(0), vec![va, vb]);
        }
        let domain = DomainDelta::capture(base, cat);
        encode_record(
            seq,
            &domain,
            &CatalogOp::Put {
                name: name.to_string(),
                instance: inst,
            },
        )
    }

    #[test]
    fn wal_records_roundtrip_through_replay() {
        let mut writer = catalog();
        let mut wal = Vec::new();
        wal.extend(put_record(1, &mut writer, "x", &[("a", "b"), ("c", "d")]));
        // A patch drawing a fresh null and a new constant.
        {
            let base = writer.interner().len();
            let v = writer.konst("patched");
            let n = writer.fresh_null();
            let domain = DomainDelta::capture(base, &writer);
            wal.extend(encode_record(
                2,
                &domain,
                &CatalogOp::Patch {
                    name: "x".into(),
                    delta: Delta::new(vec![
                        DeltaOp::Modify {
                            id: TupleId(0),
                            attr: AttrId(1),
                            value: v,
                        },
                        DeltaOp::Insert {
                            rel: RelId(0),
                            values: vec![v, n],
                        },
                        DeltaOp::Delete { id: TupleId(1) },
                    ]),
                },
            ));
        }
        wal.extend(encode_record(
            3,
            &DomainDelta::capture(writer.interner().len(), &writer),
            &CatalogOp::Remove { name: "x".into() },
        ));

        let mut reader = catalog();
        let (records, valid) = read_records(&wal, &mut reader, 0).unwrap();
        assert_eq!(valid, wal.len());
        assert_eq!(records.len(), 3);
        assert_eq!(
            records.iter().map(|r| r.seq).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
        // Replay grew the reader catalog to exactly the writer's domains.
        assert_eq!(reader.interner().len(), writer.interner().len());
        assert_eq!(reader.nulls_allocated(), writer.nulls_allocated());
        assert_eq!(reader.resolve(Sym(4)), "patched");

        match &records[0].op {
            CatalogOp::Put { name, instance } => {
                assert_eq!(name, "x");
                assert_eq!(instance.num_tuples(), 2);
            }
            other => panic!("expected Put, got {other:?}"),
        }
        match &records[1].op {
            CatalogOp::Patch { delta, .. } => assert_eq!(delta.len(), 3),
            other => panic!("expected Patch, got {other:?}"),
        }
        assert!(matches!(&records[2].op, CatalogOp::Remove { name } if name == "x"));
    }

    #[test]
    fn torn_tail_is_dropped_at_every_truncation_point() {
        let mut writer = catalog();
        let mut wal = Vec::new();
        let first = put_record(1, &mut writer, "x", &[("a", "b")]);
        wal.extend_from_slice(&first);
        wal.extend(put_record(2, &mut writer, "y", &[("c", "d")]));

        for cut in first.len()..wal.len() {
            let mut reader = catalog();
            let (records, valid) = read_records(&wal[..cut], &mut reader, 0).unwrap();
            assert_eq!(records.len(), 1, "cut at {cut}: first record survives");
            assert_eq!(valid, first.len(), "cut at {cut}");
        }
        // Truncation inside the *first* record loses everything, cleanly.
        for cut in 0..first.len() {
            let mut reader = catalog();
            let (records, valid) = read_records(&wal[..cut], &mut reader, 0).unwrap();
            assert!(records.is_empty(), "cut at {cut}");
            assert_eq!(valid, 0);
        }
    }

    #[test]
    fn checksum_failing_tail_is_dropped_not_fatal() {
        let mut writer = catalog();
        let mut wal = put_record(1, &mut writer, "x", &[("a", "b")]);
        let second_start = wal.len();
        wal.extend(put_record(2, &mut writer, "y", &[("c", "d")]));
        // Flip one payload bit of the second record.
        let last = wal.len() - 1;
        wal[last] ^= 0x01;

        let mut reader = catalog();
        let (records, valid) = read_records(&wal, &mut reader, 0).unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(valid, second_start);
    }

    #[test]
    fn replay_skips_records_already_folded_into_the_snapshot() {
        // Simulates a crash between snapshot rename and WAL truncation:
        // the WAL still holds records the snapshot already contains.
        let mut writer = catalog();
        let mut wal = Vec::new();
        wal.extend(put_record(1, &mut writer, "x", &[("a", "b")]));
        wal.extend(put_record(2, &mut writer, "y", &[("c", "d")]));

        // A reader whose catalog already reflects seq <= 1 (it has "x"'s
        // domain) replays only the second record.
        let mut reader = catalog();
        reader.konst("a");
        reader.konst("b");
        let (records, valid) = read_records(&wal, &mut reader, 1).unwrap();
        assert_eq!(valid, wal.len());
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].seq, 2);
        assert!(matches!(&records[0].op, CatalogOp::Put { name, .. } if name == "y"));
        assert_eq!(reader.interner().len(), writer.interner().len());

        // Skipping everything replays nothing and touches no domains.
        let mut untouched = catalog();
        let (records, valid) = read_records(&wal, &mut untouched, 2).unwrap();
        assert_eq!(valid, wal.len());
        assert!(records.is_empty());
        assert_eq!(untouched.interner().len(), 0);
    }

    #[test]
    fn non_increasing_sequence_is_a_real_error() {
        let mut writer = catalog();
        let mut wal = Vec::new();
        wal.extend(put_record(2, &mut writer, "x", &[("a", "b")]));
        wal.extend(put_record(2, &mut writer, "y", &[("c", "d")]));
        let mut reader = catalog();
        assert!(matches!(
            read_records(&wal, &mut reader, 0),
            Err(StoreError::Corrupt(_))
        ));
    }

    #[test]
    fn domain_delta_apply_verifies_base_and_order() {
        let mut writer = catalog();
        let base = writer.interner().len();
        writer.konst("one");
        writer.konst("two");
        let domain = DomainDelta::capture(base, &writer);

        let mut ok = catalog();
        domain.apply(&mut ok).unwrap();
        assert_eq!(ok.interner().len(), 2);

        // Wrong base: catalog already has an extra symbol.
        let mut drifted = catalog();
        drifted.konst("stray");
        assert!(matches!(
            domain.apply(&mut drifted),
            Err(StoreError::Corrupt(_))
        ));

        // Duplicate string inside the delta re-interns to a lower symbol.
        let dup = DomainDelta {
            base_syms: 0,
            new_strings: vec!["same".into(), "same".into()],
            nulls_after: 0,
        };
        assert!(matches!(
            dup.apply(&mut catalog()),
            Err(StoreError::Corrupt(_))
        ));
    }

    #[test]
    fn crc_valid_garbage_is_a_real_error() {
        // A record whose payload checksums fine but has an unknown tag.
        let payload = [99u8, 0, 0, 0, 0];
        let mut wal = Vec::new();
        put_u32(&mut wal, payload.len() as u32);
        put_u32(&mut wal, crc32(&payload));
        wal.extend_from_slice(&payload);
        let mut reader = catalog();
        assert!(matches!(
            read_records(&wal, &mut reader, 0),
            Err(StoreError::Corrupt(_))
        ));
    }
}
