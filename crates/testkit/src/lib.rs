//! `ic-testkit` — a minimal, dependency-free property-testing runner.
//!
//! The workspace's offline dependency policy (README.md) rules out
//! `proptest`; this crate supplies the part of it the test suite actually
//! needs, deterministically:
//!
//! * **Seeded generation.** A property receives values produced by a
//!   generator closure `Fn(&mut Gen) -> T`. Each case has its own `u64`
//!   case seed drawn from a per-property SplitMix64 stream, so runs are
//!   bit-reproducible everywhere.
//! * **Configurable case count** via [`Runner::cases`], overridable with
//!   the `IC_TESTKIT_CASES` environment variable.
//! * **Shrinking** by binary search over the generator's *size* parameter
//!   ([`Gen::size`], which bounds collection lengths): the runner re-runs
//!   the failing case seed at smaller sizes and reports the smallest
//!   still-failing counterexample.
//! * **Seed reproduction.** A failure prints an `IC_TESTKIT_SEED=0x…` line;
//!   exporting that variable re-runs exactly the failing case (same value,
//!   same shrink) instead of the whole battery.
//!
//! ```no_run
//! use ic_testkit::{Runner, Gen};
//! use rand::RngExt;
//!
//! Runner::new("addition_commutes").cases(256).run(
//!     |g: &mut Gen| (g.rng().random_range(0..100u32), g.rng().random_range(0..100u32)),
//!     |&(a, b)| assert_eq!(a + b, b + a),
//! );
//! ```
//!
//! Properties signal failure by panicking (`assert!` family); use
//! [`assume`] to discard uninteresting cases (`prop_assume` equivalent).

#![warn(missing_docs)]

use rand::rngs::{SplitMix64, StdRng};
use rand::{RngCore, RngExt, SeedableRng};
use std::cell::Cell;
use std::fmt::Debug;
use std::panic::{self, AssertUnwindSafe};
use std::sync::Once;

/// Environment variable: re-run a single case from its printed seed.
pub const SEED_ENV: &str = "IC_TESTKIT_SEED";
/// Environment variable: override every runner's case count.
pub const CASES_ENV: &str = "IC_TESTKIT_CASES";

/// Default size cap for generated collections (see [`Gen::size`]).
const DEFAULT_MAX_SIZE: usize = 16;
/// A case is discarded when [`assume`] fails; give up after this many
/// discards per requested case to surface over-restrictive generators.
const DISCARD_FACTOR: u32 = 20;

// ---------------------------------------------------------------------------
// Generation

/// The value source handed to generator closures: a seeded [`StdRng`] plus
/// a *size* bound that the shrinker lowers when hunting for a minimal
/// counterexample. Generators should let `size` bound anything unbounded
/// (collection lengths, recursion depth) and draw everything else from
/// [`Gen::rng`].
pub struct Gen {
    rng: StdRng,
    size: usize,
}

impl Gen {
    /// Creates a generator state from a case seed and size bound.
    pub fn new(seed: u64, size: usize) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
            size,
        }
    }

    /// The current size bound. Shrinking replays the same seed with a
    /// smaller size, so respecting it is what makes counterexamples small.
    pub fn size(&self) -> usize {
        self.size
    }

    /// The deterministic random stream for this case.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    /// A vector of `f`-generated elements with length uniform in
    /// `0..=min(max_len, size)`.
    pub fn vec_of<T>(&mut self, max_len: usize, mut f: impl FnMut(&mut Gen) -> T) -> Vec<T> {
        let cap = max_len.min(self.size);
        let len = self.rng.random_range(0..=cap);
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(f(self));
        }
        out
    }

    /// A uniformly chosen reference into a non-empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "Gen::pick on empty slice");
        &items[self.rng.random_range(0..items.len())]
    }
}

/// Discards the current case unless `cond` holds (the `prop_assume!`
/// equivalent). Discarded cases do not count toward the case budget.
pub fn assume(cond: bool) {
    if !cond {
        panic::panic_any(Discard);
    }
}

/// Private panic payload marking a discarded case.
struct Discard;

// ---------------------------------------------------------------------------
// Panic capture

thread_local! {
    /// While true, the installed panic hook swallows output: property
    /// panics are expected control flow during runs and shrinks.
    static QUIET: Cell<bool> = const { Cell::new(false) };
}

fn install_quiet_hook() {
    static INIT: Once = Once::new();
    INIT.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if !QUIET.with(|q| q.get()) {
                prev(info);
            }
        }));
    });
}

/// Runs `f`, converting panics into results and keeping the console quiet.
fn quiet_catch<T>(f: impl FnOnce() -> T) -> Result<T, Box<dyn std::any::Any + Send>> {
    install_quiet_hook();
    QUIET.with(|q| q.set(true));
    let out = panic::catch_unwind(AssertUnwindSafe(f));
    QUIET.with(|q| q.set(false));
    out
}

fn payload_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

// ---------------------------------------------------------------------------
// Runner

enum CaseOutcome {
    Pass,
    Discard,
    /// Failure message plus the `Debug` rendering of the generated value.
    Fail(String, String),
}

/// A configured property run. Build with [`Runner::new`], adjust with
/// [`Runner::cases`] / [`Runner::max_size`], execute with [`Runner::run`].
pub struct Runner {
    name: String,
    cases: u32,
    max_size: usize,
    base_seed: u64,
}

impl Runner {
    /// Creates a runner for the named property. The per-property base seed
    /// is a fixed constant mixed with the name, so distinct properties
    /// explore distinct streams while every run of the same suite is
    /// identical.
    pub fn new(name: &str) -> Self {
        // FNV-1a over the name: stable, dependency-free.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self {
            name: name.to_string(),
            cases: 256,
            max_size: DEFAULT_MAX_SIZE,
            base_seed: h,
        }
    }

    /// Sets how many (non-discarded) cases to run.
    pub fn cases(mut self, n: u32) -> Self {
        self.cases = n;
        self
    }

    /// Sets the size bound handed to generators (see [`Gen::size`]).
    pub fn max_size(mut self, s: usize) -> Self {
        self.max_size = s;
        self
    }

    /// Runs the property over generated cases; panics with a reproducible
    /// report on the first (shrunk) failure.
    ///
    /// With `IC_TESTKIT_SEED` set in the environment, only that single
    /// case is run (then shrunk if it fails) — the reproduction mode that
    /// failure reports point at.
    pub fn run<T, G, P>(self, generate: G, property: P)
    where
        T: Debug,
        G: Fn(&mut Gen) -> T,
        P: Fn(&T),
    {
        if let Some(seed) = env_seed() {
            eprintln!(
                "ic-testkit: '{}' reproducing case {SEED_ENV}={seed:#x}",
                self.name
            );
            match self.run_case(&generate, &property, seed, self.max_size) {
                CaseOutcome::Fail(..) => self.shrink_and_report(&generate, &property, seed),
                CaseOutcome::Pass => {
                    eprintln!("ic-testkit: '{}' passed under injected seed", self.name)
                }
                CaseOutcome::Discard => {
                    eprintln!("ic-testkit: '{}' discarded under injected seed", self.name)
                }
            }
            return;
        }

        let cases = env_cases().unwrap_or(self.cases);
        let mut seed_stream = SplitMix64::new(self.base_seed);
        let mut executed = 0u32;
        let mut attempts = 0u32;
        while executed < cases {
            assert!(
                attempts < cases.saturating_mul(DISCARD_FACTOR),
                "ic-testkit: '{}' discarded too many cases ({attempts} attempts for \
                 {executed}/{cases} executed) — loosen the generator or the assume()",
                self.name
            );
            attempts += 1;
            let case_seed = seed_stream.next_u64();
            match self.run_case(&generate, &property, case_seed, self.max_size) {
                CaseOutcome::Pass => executed += 1,
                CaseOutcome::Discard => {}
                CaseOutcome::Fail(..) => self.shrink_and_report(&generate, &property, case_seed),
            }
        }
    }

    /// Generates and checks one case. Generator and property panics are
    /// both captured; [`assume`] discards propagate as `Discard`.
    fn run_case<T, G, P>(&self, generate: &G, property: &P, seed: u64, size: usize) -> CaseOutcome
    where
        T: Debug,
        G: Fn(&mut Gen) -> T,
        P: Fn(&T),
    {
        let produced = quiet_catch(|| {
            let mut g = Gen::new(seed, size);
            let value = generate(&mut g);
            let rendered = format!("{value:#?}");
            (value, rendered)
        });
        let (value, rendered) = match produced {
            Ok(v) => v,
            Err(p) if p.downcast_ref::<Discard>().is_some() => return CaseOutcome::Discard,
            Err(p) => {
                return CaseOutcome::Fail(
                    format!("generator panicked: {}", payload_message(&*p)),
                    "<generator did not finish>".to_string(),
                )
            }
        };
        match quiet_catch(|| property(&value)) {
            Ok(()) => CaseOutcome::Pass,
            Err(p) if p.downcast_ref::<Discard>().is_some() => CaseOutcome::Discard,
            Err(p) => CaseOutcome::Fail(payload_message(&*p), rendered),
        }
    }

    /// Binary-searches the smallest failing size for `seed` (the same seed
    /// replayed at a smaller size yields a smaller value), then prints the
    /// report and panics. `self.max_size` is known to fail on entry.
    fn shrink_and_report<T, G, P>(&self, generate: &G, property: &P, seed: u64) -> !
    where
        T: Debug,
        G: Fn(&mut Gen) -> T,
        P: Fn(&T),
    {
        let mut lo = 0usize;
        let mut hi = self.max_size;
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            match self.run_case(generate, property, seed, mid) {
                CaseOutcome::Fail(..) => hi = mid,
                _ => lo = mid + 1,
            }
        }
        // `hi` is the smallest size bisection found failing; re-run it to
        // recover the counterexample and message.
        let (message, rendered) = match self.run_case(generate, property, seed, hi) {
            CaseOutcome::Fail(m, r) => (m, r),
            // Non-monotone property (fails at max_size, passes at hi after
            // the search) — fall back to the original size.
            _ => match self.run_case(generate, property, seed, self.max_size) {
                CaseOutcome::Fail(m, r) => {
                    hi = self.max_size;
                    (m, r)
                }
                _ => unreachable!("case stopped failing on replay; property is nondeterministic"),
            },
        };
        eprintln!(
            "\nic-testkit: property '{}' FAILED (case seed {seed:#x}, shrunk size {hi} of {})",
            self.name, self.max_size
        );
        eprintln!("counterexample: {rendered}");
        eprintln!("failure: {message}");
        eprintln!("reproduce: {SEED_ENV}={seed:#x} cargo test {}", self.name);
        panic!(
            "property '{}' failed: {message} [reproduce with {SEED_ENV}={seed:#x}]",
            self.name
        );
    }
}

fn env_seed() -> Option<u64> {
    let raw = std::env::var(SEED_ENV).ok()?;
    let raw = raw.trim();
    let parsed = if let Some(hex) = raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16)
    } else {
        raw.parse()
    };
    match parsed {
        Ok(v) => Some(v),
        Err(_) => panic!("ic-testkit: cannot parse {SEED_ENV}={raw:?} as u64"),
    }
}

fn env_cases() -> Option<u32> {
    let raw = std::env::var(CASES_ENV).ok()?;
    match raw.trim().parse() {
        Ok(v) => Some(v),
        Err(_) => panic!("ic-testkit: cannot parse {CASES_ENV}={raw:?} as u32"),
    }
}
