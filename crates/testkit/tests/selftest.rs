//! Self-tests of the property runner: determinism, discard handling, and —
//! the load-bearing one — that a failure's printed seed, re-injected via
//! the environment, reproduces the identical shrunk counterexample.

use ic_testkit::{assume, Gen, Runner, SEED_ENV};
use rand::RngExt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Mutex, MutexGuard, OnceLock};

/// All tests in this binary share the process environment (the runner
/// reads `IC_TESTKIT_SEED`), so serialize them.
fn env_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    let lock = LOCK.get_or_init(|| Mutex::new(()));
    lock.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn gen_vec(g: &mut Gen) -> Vec<u8> {
    g.vec_of(12, |g| g.rng().random_range(0..10u8))
}

fn extract_seed(panic_msg: &str) -> u64 {
    let marker = format!("{SEED_ENV}=0x");
    let at = panic_msg.find(&marker).expect("no seed in panic message");
    let hex: String = panic_msg[at + marker.len()..]
        .chars()
        .take_while(|c| c.is_ascii_hexdigit())
        .collect();
    u64::from_str_radix(&hex, 16).expect("unparsable seed in panic message")
}

#[test]
fn passing_property_runs_all_cases() {
    let _guard = env_lock();
    let count = std::cell::Cell::new(0u32);
    Runner::new("selftest_pass")
        .cases(40)
        .run(|g| gen_vec(g), |_| count.set(count.get() + 1));
    assert_eq!(count.get(), 40, "every requested case should execute");
}

#[test]
fn failing_property_reports_seed_and_env_reproduces_counterexample() {
    let _guard = env_lock();
    let trace: Mutex<Vec<Vec<u8>>> = Mutex::new(Vec::new());
    let run = |t: &Mutex<Vec<Vec<u8>>>| {
        catch_unwind(AssertUnwindSafe(|| {
            Runner::new("selftest_fail").cases(64).max_size(12).run(
                |g| gen_vec(g),
                |v| {
                    t.lock().unwrap().push(v.clone());
                    assert!(v.len() < 3, "vector too long: {}", v.len());
                },
            )
        }))
    };

    // First run: must fail and advertise a reproduction seed.
    let err = run(&trace).expect_err("property should fail");
    let msg = err
        .downcast_ref::<String>()
        .expect("panic payload should be a string")
        .clone();
    assert!(msg.contains("selftest_fail"), "message: {msg}");
    let seed = extract_seed(&msg);
    // The last checked value is the post-shrink counterexample: minimal
    // (binary search over size cannot go lower) means exactly length 3.
    let original = trace.lock().unwrap().last().unwrap().clone();
    assert_eq!(original.len(), 3, "shrunk counterexample should be minimal");

    // Second run, seed injected: same failure, same counterexample.
    trace.lock().unwrap().clear();
    std::env::set_var(SEED_ENV, format!("{seed:#x}"));
    let err2 = run(&trace);
    std::env::remove_var(SEED_ENV);
    err2.expect_err("injected seed should reproduce the failure");
    let reproduced = trace.lock().unwrap().last().unwrap().clone();
    assert_eq!(
        original, reproduced,
        "env-injected seed must reproduce the identical counterexample"
    );
}

#[test]
fn failure_seed_is_deterministic_across_runs() {
    let _guard = env_lock();
    let seed_of = || {
        let err = catch_unwind(AssertUnwindSafe(|| {
            Runner::new("selftest_deterministic")
                .cases(32)
                .run(|g| gen_vec(g), |v| assert!(v.iter().sum::<u8>() % 7 != 3))
        }))
        .expect_err("property should fail eventually");
        extract_seed(err.downcast_ref::<String>().unwrap())
    };
    assert_eq!(seed_of(), seed_of());
}

#[test]
fn assume_discards_do_not_fail_the_property() {
    let _guard = env_lock();
    Runner::new("selftest_assume").cases(32).run(
        |g| gen_vec(g),
        |v| {
            assume(!v.is_empty());
            assert!(!v.is_empty());
        },
    );
}

#[test]
fn impossible_assume_panics_with_discard_diagnosis() {
    let _guard = env_lock();
    let err = catch_unwind(AssertUnwindSafe(|| {
        Runner::new("selftest_starved")
            .cases(8)
            .run(|g| gen_vec(g), |_| assume(false))
    }))
    .expect_err("starved runner should panic");
    let msg = err.downcast_ref::<String>().unwrap();
    assert!(msg.contains("discarded too many cases"), "message: {msg}");
}

#[test]
fn shrinking_respects_generator_size() {
    let _guard = env_lock();
    // Size 0 forces empty vectors, so a property failing on any non-empty
    // vector must shrink to exactly length 1.
    let trace: Mutex<Vec<usize>> = Mutex::new(Vec::new());
    let err = catch_unwind(AssertUnwindSafe(|| {
        Runner::new("selftest_shrink").cases(64).max_size(16).run(
            |g| gen_vec(g),
            |v| {
                trace.lock().unwrap().push(v.len());
                assert!(v.is_empty(), "non-empty");
            },
        )
    }));
    err.expect_err("property should fail");
    assert_eq!(*trace.lock().unwrap().last().unwrap(), 1);
}
