//! Version comparison: the signature algorithm vs the `diff` baseline
//! (paper Table 7).
//!
//! Both tools are asked the same question about an original dataset and a
//! derived version: how many tuples match (`#M`) and how many are left
//! unmatched on either side (`#LNM`, `#RNM`). `diff` relies on line order
//! and exact equality, so it fails on shuffles, placeholders, and schema
//! changes; the instance match handles all of them.

use crate::diff::{diff_versions, DiffStats};
use crate::ops::Version;
use ic_core::{signature_match, MatchMode, SignatureConfig};
use ic_model::{Catalog, RelId};

/// The `#M / #LNM / #RNM` triple for one tool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MatchCounts {
    /// Matched tuples / lines.
    pub matches: usize,
    /// Unmatched on the original (left) side.
    pub left_non_matching: usize,
    /// Unmatched on the modified (right) side.
    pub right_non_matching: usize,
}

/// Table 7 row: both tools on one (original, modified) pair.
#[derive(Debug, Clone, Copy)]
pub struct VersionComparison {
    /// Tuples in the original (`#TO`).
    pub original_tuples: usize,
    /// Tuples in the modified version (`#TM`).
    pub modified_tuples: usize,
    /// The `diff` baseline's counts.
    pub diff: MatchCounts,
    /// The signature algorithm's counts.
    pub signature: MatchCounts,
    /// The signature similarity score (extra signal `diff` cannot give).
    pub signature_score: f64,
}

/// Compares an original version with a modified one on relation `rel`,
/// running both the diff baseline and the signature algorithm (fully
/// injective mode, as tuples represent unique entities in versioning).
pub fn compare_versions(
    original: &Version,
    modified: &Version,
    catalog: &Catalog,
    rel: RelId,
) -> VersionComparison {
    let d: DiffStats = diff_versions(original, modified, catalog, rel);

    let cfg = SignatureConfig {
        mode: MatchMode::one_to_one(),
        ..Default::default()
    };
    let out = signature_match(&original.instance, &modified.instance, catalog, &cfg);
    let matched = out.best.pairs.len();
    let lt = original.instance.num_tuples();
    let rt = modified.instance.num_tuples();

    VersionComparison {
        original_tuples: lt,
        modified_tuples: rt,
        diff: MatchCounts {
            matches: d.matches,
            left_non_matching: d.left_only,
            right_non_matching: d.right_only,
        },
        signature: MatchCounts {
            matches: matched,
            left_non_matching: lt - matched,
            right_non_matching: rt - matched,
        },
        signature_score: out.best.score(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::Variant;
    use ic_datagen::Dataset;
    use ic_model::Catalog;

    fn iris() -> (Catalog, Version, RelId) {
        let (cat, inst) = Dataset::Iris.generate(120, 3);
        let rel = cat.schema().rel("Iris").unwrap();
        (cat, Version::plain(inst), rel)
    }

    #[test]
    fn shuffle_defeats_diff_but_not_signature() {
        let (mut cat, orig, rel) = iris();
        let v = Variant::Shuffled.apply(&orig.instance, &mut cat, rel, 0.0, 0, 1);
        let c = compare_versions(&orig, &v, &cat, rel);
        // diff matches only a small LCS; signature matches everything.
        assert!(c.diff.matches < 120, "diff should lose matches");
        assert_eq!(c.signature.matches, 120);
        assert_eq!(c.signature.left_non_matching, 0);
        assert_eq!(c.signature.right_non_matching, 0);
        assert!((c.signature_score - 1.0).abs() < 1e-9);
    }

    #[test]
    fn row_removal_matched_by_both() {
        let (mut cat, orig, rel) = iris();
        let v = Variant::RowsRemoved.apply(&orig.instance, &mut cat, rel, 0.175, 0, 2);
        let c = compare_versions(&orig, &v, &cat, rel);
        let removed = 120 - c.modified_tuples;
        assert_eq!(c.diff.matches, c.modified_tuples);
        assert_eq!(c.diff.left_non_matching, removed);
        assert_eq!(c.signature.matches, c.modified_tuples);
        assert_eq!(c.signature.left_non_matching, removed);
        assert_eq!(c.signature.right_non_matching, 0);
    }

    #[test]
    fn removal_plus_shuffle_defeats_diff_only() {
        let (mut cat, orig, rel) = iris();
        let v = Variant::RowsRemovedShuffled.apply(&orig.instance, &mut cat, rel, 0.175, 0, 3);
        let c = compare_versions(&orig, &v, &cat, rel);
        assert!(c.diff.matches < c.modified_tuples);
        assert_eq!(c.signature.matches, c.modified_tuples);
        assert_eq!(c.signature.right_non_matching, 0);
    }

    #[test]
    fn column_removal_defeats_diff_completely() {
        let (mut cat, orig, rel) = iris();
        let v = Variant::ColumnsRemoved.apply(&orig.instance, &mut cat, rel, 0.0, 1, 4);
        let c = compare_versions(&orig, &v, &cat, rel);
        // Every serialized line differs (a whole column is gone)...
        assert_eq!(c.diff.matches, 0);
        assert_eq!(c.diff.left_non_matching, 120);
        // ...but the signature matches every tuple through the nulls.
        assert_eq!(c.signature.matches, 120);
        assert!(c.signature_score > 0.5 && c.signature_score < 1.0);
    }
}
