//! Line-oriented diff baseline — a reimplementation of what the `diff`
//! command-line tool computes for the paper's Table 7.
//!
//! Rows are serialized to comma-separated lines (dropped columns omitted,
//! labeled nulls as `_N<i>`), and the number of matching lines is the
//! length of the longest common subsequence, computed with the Myers O(ND)
//! greedy algorithm (the same algorithm GNU diff uses). Only the counts are
//! needed, so no edit-script trace is kept: `#M = (|a| + |b| − D) / 2`.

use crate::ops::Version;
use ic_model::{AttrId, Catalog, Instance, RelId};

/// Match statistics of a line diff.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiffStats {
    /// Lines common to both files in sequence (LCS length), `#M`.
    pub matches: usize,
    /// Lines only in the left file, `#LNM`.
    pub left_only: usize,
    /// Lines only in the right file, `#RNM`.
    pub right_only: usize,
}

/// Serializes one relation of a version to lines, skipping dropped columns.
pub fn serialize_lines(version: &Version, catalog: &Catalog, rel: RelId) -> Vec<String> {
    serialize_instance_lines(&version.instance, catalog, rel, &version.dropped_columns)
}

/// Serializes one relation of an instance to comma-joined value lines,
/// omitting the given columns.
pub fn serialize_instance_lines(
    instance: &Instance,
    catalog: &Catalog,
    rel: RelId,
    skip: &[AttrId],
) -> Vec<String> {
    instance
        .tuples(rel)
        .iter()
        .map(|t| {
            let cells: Vec<String> = t
                .values()
                .iter()
                .enumerate()
                .filter(|(i, _)| !skip.contains(&AttrId(*i as u16)))
                .map(|(_, &v)| catalog.render(v))
                .collect();
            cells.join(",")
        })
        .collect()
}

/// Myers O(ND) shortest edit distance between two sequences (insertions +
/// deletions only, like `diff`). Linear space, no trace.
fn myers_distance<T: PartialEq>(a: &[T], b: &[T]) -> usize {
    let n = a.len();
    let m = b.len();
    if n == 0 {
        return m;
    }
    if m == 0 {
        return n;
    }
    let max = n + m;
    // v[k + max] = furthest x on diagonal k.
    let mut v = vec![0usize; 2 * max + 1];
    for d in 0..=max {
        let mut k = -(d as isize);
        while k <= d as isize {
            let idx = (k + max as isize) as usize;
            let mut x = if k == -(d as isize) || (k != d as isize && v[idx - 1] < v[idx + 1]) {
                v[idx + 1] // move down (insertion)
            } else {
                v[idx - 1] + 1 // move right (deletion)
            };
            let mut y = (x as isize - k) as usize;
            while x < n && y < m && a[x] == b[y] {
                x += 1;
                y += 1;
            }
            v[idx] = x;
            if x >= n && y >= m {
                return d;
            }
            k += 2;
        }
    }
    max
}

/// Diffs two line sequences, returning match statistics.
/// # Example
///
/// ```
/// use ic_versioning::diff_lines;
///
/// let a: Vec<String> = ["1", "2", "3"].iter().map(|s| s.to_string()).collect();
/// let b: Vec<String> = ["1", "3"].iter().map(|s| s.to_string()).collect();
/// let d = diff_lines(&a, &b);
/// assert_eq!(d.matches, 2);
/// assert_eq!(d.left_only, 1);
/// ```
pub fn diff_lines(a: &[String], b: &[String]) -> DiffStats {
    let d = myers_distance(a, b);
    let matches = (a.len() + b.len() - d) / 2;
    DiffStats {
        matches,
        left_only: a.len() - matches,
        right_only: b.len() - matches,
    }
}

/// Convenience: diff two versions of one relation.
pub fn diff_versions(left: &Version, right: &Version, catalog: &Catalog, rel: RelId) -> DiffStats {
    let a = serialize_lines(left, catalog, rel);
    let b = serialize_lines(right, catalog, rel);
    diff_lines(&a, &b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lines(xs: &[&str]) -> Vec<String> {
        xs.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn identical_sequences() {
        let a = lines(&["x", "y", "z"]);
        let s = diff_lines(&a, &a);
        assert_eq!(
            s,
            DiffStats {
                matches: 3,
                left_only: 0,
                right_only: 0
            }
        );
    }

    #[test]
    fn disjoint_sequences() {
        let a = lines(&["a", "b"]);
        let b = lines(&["c", "d", "e"]);
        let s = diff_lines(&a, &b);
        assert_eq!(s.matches, 0);
        assert_eq!(s.left_only, 2);
        assert_eq!(s.right_only, 3);
    }

    #[test]
    fn removal_keeps_order_matches_rest() {
        let a = lines(&["1", "2", "3", "4", "5"]);
        let b = lines(&["1", "3", "5"]);
        let s = diff_lines(&a, &b);
        assert_eq!(s.matches, 3);
        assert_eq!(s.left_only, 2);
        assert_eq!(s.right_only, 0);
    }

    #[test]
    fn shuffle_breaks_sequence_matching() {
        // Reversal: LCS of a sequence and its reverse is 1 (all distinct).
        let a = lines(&["1", "2", "3", "4", "5"]);
        let b = lines(&["5", "4", "3", "2", "1"]);
        let s = diff_lines(&a, &b);
        assert_eq!(s.matches, 1);
        assert_eq!(s.left_only, 4);
    }

    #[test]
    fn classic_myers_example() {
        // ABCABBA vs CBABAC: edit distance 5, LCS 4.
        let a: Vec<String> = "ABCABBA".chars().map(|c| c.to_string()).collect();
        let b: Vec<String> = "CBABAC".chars().map(|c| c.to_string()).collect();
        let s = diff_lines(&a, &b);
        assert_eq!(s.matches, 4);
        assert_eq!(s.left_only, 3);
        assert_eq!(s.right_only, 2);
    }

    #[test]
    fn empty_inputs() {
        let e: Vec<String> = vec![];
        let a = lines(&["x"]);
        assert_eq!(diff_lines(&e, &e).matches, 0);
        let s = diff_lines(&a, &e);
        assert_eq!(s.left_only, 1);
        assert_eq!(s.right_only, 0);
    }

    #[test]
    fn serialization_skips_dropped_columns() {
        use ic_model::{Catalog, Instance, Schema};
        let mut cat = Catalog::new(Schema::single("R", &["A", "B"]));
        let rel = cat.schema().rel("R").unwrap();
        let mut inst = Instance::new("I", &cat);
        let a = cat.konst("a");
        let b = cat.konst("b");
        inst.insert(rel, vec![a, b]);
        let lines = serialize_instance_lines(&inst, &cat, rel, &[AttrId(0)]);
        assert_eq!(lines, vec!["b".to_string()]);
    }
}
