//! Version-history reconstruction from pairwise similarities.
//!
//! The paper's introduction motivates instance similarity with data lakes
//! where "new versions of datasets may be added without identifying them as
//! such": given a bag of versions, the pairwise similarity matrix reveals
//! which versions are adjacent in the (unknown) evolution chain, because
//! each step only perturbs the data a little — similarity decreases
//! monotonically with chain distance.
//!
//! [`reconstruct_chain`] greedily orders versions by nearest-neighbor
//! similarity starting from a given endpoint; [`find_endpoints`] guesses the
//! endpoints as the pair with the *lowest* similarity.

use ic_core::{signature_match, signature_match_seeded, InstanceSigMaps, SignatureConfig};
use ic_model::{Catalog, Instance};

/// Computes the symmetric pairwise similarity matrix of `versions` with the
/// signature algorithm (diagonal = 1).
pub fn similarity_matrix(
    versions: &[&Instance],
    catalog: &Catalog,
    cfg: &SignatureConfig,
) -> Vec<Vec<f64>> {
    let n = versions.len();
    let mut m = vec![vec![1.0f64; n]; n];
    for i in 0..n {
        for j in (i + 1)..n {
            let s = signature_match(versions[i], versions[j], catalog, cfg)
                .best
                .score();
            m[i][j] = s;
            m[j][i] = s;
        }
    }
    m
}

/// [`similarity_matrix`] over shared signature maps: each version's
/// per-relation maps are built **once** and seed every comparison the
/// version participates in — `n` index builds instead of the `n(n−1)`
/// a from-scratch matrix performs (each of the `n(n−1)/2` pairs builds
/// both sides). Bit-identical to [`similarity_matrix`] under the seeding
/// contract of [`signature_match_seeded`].
pub fn similarity_matrix_cached(
    versions: &[&Instance],
    catalog: &Catalog,
    cfg: &SignatureConfig,
) -> Vec<Vec<f64>> {
    let maps: Vec<InstanceSigMaps> = versions
        .iter()
        .map(|v| InstanceSigMaps::build(v, cfg))
        .collect();
    let n = versions.len();
    let mut m = vec![vec![1.0f64; n]; n];
    for i in 0..n {
        for j in (i + 1)..n {
            let s = signature_match_seeded(
                versions[i],
                versions[j],
                catalog,
                cfg,
                Some(&maps[i]),
                Some(&maps[j]),
            )
            .best
            .score();
            m[i][j] = s;
            m[j][i] = s;
        }
    }
    m
}

/// Parallel variant of [`similarity_matrix`]: the `n(n−1)/2` comparisons
/// are independent, so they are fanned out over `threads` scoped workers.
/// Produces exactly the same matrix.
pub fn similarity_matrix_parallel(
    versions: &[&Instance],
    catalog: &Catalog,
    cfg: &SignatureConfig,
    threads: usize,
) -> Vec<Vec<f64>> {
    let n = versions.len();
    let pairs: Vec<(usize, usize)> = (0..n)
        .flat_map(|i| ((i + 1)..n).map(move |j| (i, j)))
        .collect();
    let threads = threads.max(1).min(pairs.len().max(1));
    let chunk = pairs.len().div_ceil(threads);
    let mut results: Vec<(usize, usize, f64)> = Vec::with_capacity(pairs.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = pairs
            .chunks(chunk.max(1))
            .map(|chunk_pairs| {
                scope.spawn(move || {
                    chunk_pairs
                        .iter()
                        .map(|&(i, j)| {
                            let s = signature_match(versions[i], versions[j], catalog, cfg)
                                .best
                                .score();
                            (i, j, s)
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for h in handles {
            results.extend(h.join().expect("worker panicked"));
        }
    });
    let mut m = vec![vec![1.0f64; n]; n];
    for (i, j, s) in results {
        m[i][j] = s;
        m[j][i] = s;
    }
    m
}

/// Returns the pair of indices with the lowest pairwise similarity — the
/// natural guess for the two endpoints of an evolution chain.
pub fn find_endpoints(matrix: &[Vec<f64>]) -> (usize, usize) {
    let n = matrix.len();
    let mut best = (0, if n > 1 { 1 } else { 0 });
    let mut best_sim = f64::INFINITY;
    for (i, row) in matrix.iter().enumerate() {
        for (j, &sim) in row.iter().enumerate().skip(i + 1) {
            if sim < best_sim {
                best_sim = sim;
                best = (i, j);
            }
        }
    }
    best
}

/// Greedy nearest-neighbor ordering: starting from `start`, repeatedly
/// append the unvisited version most similar to the current one.
pub fn reconstruct_chain(matrix: &[Vec<f64>], start: usize) -> Vec<usize> {
    let n = matrix.len();
    let mut order = vec![start];
    let mut visited = vec![false; n];
    visited[start] = true;
    while order.len() < n {
        let cur = *order.last().expect("non-empty");
        let mut best: Option<(usize, f64)> = None;
        for (j, &seen) in visited.iter().enumerate() {
            if seen {
                continue;
            }
            let s = matrix[cur][j];
            if best.is_none_or(|(_, bs)| s > bs) {
                best = Some((j, s));
            }
        }
        let (next, _) = best.expect("unvisited version exists");
        visited[next] = true;
        order.push(next);
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use ic_datagen::{evolve_chain, Dataset, EvolveParams};

    #[test]
    fn reconstructs_generated_chain() {
        let chain = evolve_chain(Dataset::Bikeshare, 120, 4, &EvolveParams::default(), 11);
        let refs: Vec<&ic_model::Instance> = chain.versions.iter().collect();
        let m = similarity_matrix(&refs, &chain.catalog, &SignatureConfig::default());
        // Similarity decreases with chain distance from v0.
        for k in 2..m.len() {
            assert!(
                m[0][k] <= m[0][k - 1] + 0.02,
                "similarity to v0 should shrink: {:?}",
                m[0]
            );
        }
        // Endpoints are the most dissimilar pair.
        let (a, b) = find_endpoints(&m);
        assert_eq!((a.min(b), a.max(b)), (0, m.len() - 1));
        // Nearest-neighbor ordering recovers the chain (or its reverse).
        let order = reconstruct_chain(&m, 0);
        let expected: Vec<usize> = (0..m.len()).collect();
        assert_eq!(order, expected);
        let reversed = reconstruct_chain(&m, m.len() - 1);
        let expected_rev: Vec<usize> = (0..m.len()).rev().collect();
        assert_eq!(reversed, expected_rev);
    }

    #[test]
    fn matrix_is_symmetric_with_unit_diagonal() {
        let chain = evolve_chain(Dataset::Iris, 50, 2, &EvolveParams::default(), 12);
        let refs: Vec<&ic_model::Instance> = chain.versions.iter().collect();
        let m = similarity_matrix(&refs, &chain.catalog, &SignatureConfig::default());
        for (i, row) in m.iter().enumerate() {
            assert_eq!(row[i], 1.0);
            for (j, &v) in row.iter().enumerate() {
                assert!((v - m[j][i]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn cached_matrix_is_bit_identical_to_sequential() {
        let chain = evolve_chain(Dataset::Iris, 60, 4, &EvolveParams::default(), 21);
        let refs: Vec<&ic_model::Instance> = chain.versions.iter().collect();
        for cfg in [
            SignatureConfig::default(),
            SignatureConfig {
                partial: true,
                ..Default::default()
            },
        ] {
            let seq = similarity_matrix(&refs, &chain.catalog, &cfg);
            let cached = similarity_matrix_cached(&refs, &chain.catalog, &cfg);
            for (row_s, row_c) in seq.iter().zip(&cached) {
                for (a, b) in row_s.iter().zip(row_c) {
                    assert_eq!(a.to_bits(), b.to_bits(), "partial={}", cfg.partial);
                }
            }
        }
    }

    #[test]
    fn parallel_matrix_equals_sequential() {
        let chain = evolve_chain(Dataset::Iris, 40, 3, &EvolveParams::default(), 13);
        let refs: Vec<&ic_model::Instance> = chain.versions.iter().collect();
        let cfg = SignatureConfig::default();
        let seq = similarity_matrix(&refs, &chain.catalog, &cfg);
        for threads in [1, 2, 8] {
            let par = similarity_matrix_parallel(&refs, &chain.catalog, &cfg, threads);
            assert_eq!(seq, par, "threads = {threads}");
        }
    }

    #[test]
    fn single_version_chain() {
        let m = vec![vec![1.0]];
        assert_eq!(reconstruct_chain(&m, 0), vec![0]);
        assert_eq!(find_endpoints(&m), (0, 0));
    }
}
