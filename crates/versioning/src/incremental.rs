//! Tuple-level deltas between instance *versions* — the bridge from the
//! versioning substrate to ic-core's incremental comparison path
//! ([`ic_core::CompareCache`]).
//!
//! The version operations in [`crate::ops`] derive each version by cloning
//! and mutating its predecessor, so tuple ids are stable across versions.
//! [`instance_delta`] exploits that: it reconstructs the tuple-level
//! [`Delta`] turning `old` into `new` whenever the evolution is
//! *delta-representable* — per relation, `new`'s storage order is the
//! surviving `old` tuples in their old relative order followed by the
//! inserted tuples, with insert ids consecutive from `old.id_bound()`.
//! That is exactly the shape [`Delta::apply`] (and the cache's in-place
//! repair) reproduces, so `old.clone()` + the delta equals `new` tuple for
//! tuple, position for position. Shuffled versions return `None` and fall
//! back to a full comparison.

use ic_core::{Delta, DeltaOp};
use ic_model::{AttrId, Instance, RelId, TupleId};

/// Reconstructs the tuple-level delta turning `old` into `new`, or `None`
/// if the evolution is not delta-representable (see the [module
/// docs](self)). Ops are emitted deletes first, then cell modifications,
/// then inserts in id order — applying them to (a clone of) `old`
/// reproduces `new`'s tuples, ids, and storage order exactly. Instance
/// names are not part of the delta.
pub fn instance_delta(old: &Instance, new: &Instance) -> Option<Delta> {
    if old.num_relations() != new.num_relations() {
        return None;
    }
    let bound = old.id_bound() as u32;
    let mut deletes = Vec::new();
    let mut modifies = Vec::new();
    let mut inserts: Vec<(TupleId, RelId, Vec<ic_model::Value>)> = Vec::new();
    for r in 0..old.num_relations() {
        let rel = RelId(r as u16);
        let mut last_old_pos: Option<u32> = None;
        let mut survivors_done = false;
        for t in new.tuples(rel) {
            if t.id().0 < bound {
                // A surviving old tuple: must exist in the same relation,
                // appear before any insert, and keep its relative order.
                let (orel, opos) = old.loc(t.id())?;
                if orel != rel || survivors_done {
                    return None;
                }
                if last_old_pos.is_some_and(|p| opos <= p) {
                    return None;
                }
                last_old_pos = Some(opos);
                let old_t = old.tuple(t.id()).expect("loc implies live");
                for (i, (&nv, &ov)) in t.values().iter().zip(old_t.values()).enumerate() {
                    if nv != ov {
                        modifies.push(DeltaOp::Modify {
                            id: t.id(),
                            attr: AttrId(i as u16),
                            value: nv,
                        });
                    }
                }
            } else {
                survivors_done = true;
                inserts.push((t.id(), rel, t.values().to_vec()));
            }
        }
        for t in old.tuples(rel) {
            let gone = match new.loc(t.id()) {
                None => true,
                // Present in `new` but in a different relation: a move,
                // which the delta model cannot express.
                Some((nrel, _)) if nrel != rel => return None,
                Some(_) => false,
            };
            if gone {
                deletes.push(DeltaOp::Delete { id: t.id() });
            }
        }
    }
    // Inserts must receive the exact ids `new` has: Instance::insert hands
    // out ids from the (never-shrinking) id bound, so they must be
    // consecutive from `old.id_bound()` in emission order.
    inserts.sort_by_key(|(id, _, _)| *id);
    for (i, (id, _, _)) in inserts.iter().enumerate() {
        if id.0 != bound + i as u32 {
            return None;
        }
    }
    let mut ops = deletes;
    ops.append(&mut modifies);
    ops.extend(
        inserts
            .into_iter()
            .map(|(_, rel, values)| DeltaOp::Insert { rel, values }),
    );
    Some(Delta::new(ops))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::Variant;
    use ic_model::{Catalog, Schema};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(n: usize) -> (Catalog, Instance, RelId) {
        let mut cat = Catalog::new(Schema::single("R", &["A", "B"]));
        let rel = cat.schema().rel("R").unwrap();
        let mut inst = Instance::new("v0", &cat);
        for i in 0..n {
            let a = cat.konst(&format!("a{i}"));
            let b = if i % 4 == 0 {
                cat.fresh_null()
            } else {
                cat.konst(&format!("b{i}"))
            };
            inst.insert(rel, vec![a, b]);
        }
        (cat, inst, rel)
    }

    #[test]
    fn row_removal_roundtrips() {
        let (mut cat, old, rel) = setup(40);
        let v = Variant::RowsRemoved.apply(&old, &mut cat, rel, 0.25, 0, 9);
        let delta = instance_delta(&old, &v.instance).expect("representable");
        assert!(delta
            .ops
            .iter()
            .all(|op| matches!(op, DeltaOp::Delete { .. })));
        let mut replay = old.clone();
        delta.apply(&mut replay).unwrap();
        assert_eq!(replay.tuples(rel), v.instance.tuples(rel));
    }

    #[test]
    fn modifications_and_inserts_roundtrip() {
        let (mut cat, old, rel) = setup(10);
        let mut new = old.clone();
        let x = cat.konst("x");
        let n = cat.fresh_null();
        new.set_value(TupleId(2), AttrId(0), x);
        new.set_value(TupleId(7), AttrId(1), n);
        new.remove(TupleId(4));
        new.insert(rel, vec![x, n]);
        let delta = instance_delta(&old, &new).expect("representable");
        assert_eq!(delta.len(), 4); // 1 delete + 2 modifies + 1 insert
        let mut replay = old.clone();
        delta.apply(&mut replay).unwrap();
        assert_eq!(replay.tuples(rel), new.tuples(rel));
        assert_eq!(replay.id_bound(), new.id_bound());
    }

    #[test]
    fn shuffle_is_not_representable() {
        let (mut cat, old, rel) = setup(30);
        let mut rng = StdRng::seed_from_u64(5);
        let mut new = old.clone();
        crate::ops::shuffle_rows(&mut new, rel, &mut rng);
        assert!(instance_delta(&old, &new).is_none());
    }

    #[test]
    fn delta_through_compare_cache_matches_fresh() {
        let (mut cat, v0, rel) = setup(50);
        let v1 = Variant::RowsRemoved
            .apply(&v0, &mut cat, rel, 0.2, 0, 3)
            .instance;
        let delta = instance_delta(&v0, &v1).expect("row removal is representable");
        let cmp = ic_core::Comparator::new(&cat).build().unwrap();
        let mut cache = cmp.compare_cache();
        cache.insert_owned("base", v0.clone()).unwrap();
        cache.insert_owned("cur", v0.clone()).unwrap();
        cache.compare("base", "cur").unwrap();
        let incremental = cache.compare_delta("base", "cur", &delta).unwrap();
        let fresh = cmp.compare(&v0, &v1).unwrap();
        assert_eq!(incremental.score().to_bits(), fresh.score().to_bits());
        assert_eq!(incremental.outcome.best.pairs, fresh.outcome.best.pairs);
    }

    #[test]
    fn identical_instances_give_empty_delta() {
        let (_cat, old, _) = setup(8);
        let delta = instance_delta(&old, &old.clone()).expect("representable");
        assert!(delta.is_empty());
    }
}
