//! Data-lake search and deduplication — the paper's motivating
//! applications: *"finding datasets that are similar to an already
//! discovered dataset or user-provided data example"* and *"data lake
//! deduplication aims to find duplicate or near duplicate tables"*
//! (Sec. 1, citing Koch et al.'s Xash).
//!
//! Tables in a lake rarely share a catalog or even a schema, so every
//! comparison first aligns the two tables into a union schema (padding
//! missing columns with fresh nulls, Sec. 4.3) and then runs the signature
//! algorithm. Scores are therefore comparable across heterogeneous tables.

use ic_core::{signature_match, signature_match_seeded, InstanceSigMaps, SignatureConfig};
use ic_index::Sketch;
use ic_model::{align_instances, Catalog, Instance};

// NOTE on incremental reuse: heterogeneous lake tables are aligned into a
// fresh union schema per pair, so their signature maps cannot be shared
// across pairs. Lakes whose tables already share one catalog skip the
// alignment and *can* reuse per-table maps — see
// [`find_duplicate_groups_shared`] and
// [`crate::history::similarity_matrix_cached`].

/// A table in the lake: its own catalog plus its instance.
#[derive(Debug)]
pub struct LakeTable {
    /// The table's catalog (schema + values).
    pub catalog: Catalog,
    /// The table's data.
    pub instance: Instance,
}

impl LakeTable {
    /// Wraps a catalog/instance pair.
    pub fn new(catalog: Catalog, instance: Instance) -> Self {
        Self { catalog, instance }
    }
}

/// Compares two lake tables: aligns their schemas and runs the signature
/// algorithm, returning the similarity score.
pub fn table_similarity(a: &LakeTable, b: &LakeTable, cfg: &SignatureConfig) -> f64 {
    let aligned = align_instances(&a.catalog, &a.instance, &b.catalog, &b.instance);
    signature_match(&aligned.left, &aligned.right, &aligned.catalog, cfg)
        .best
        .score()
}

/// Ranks the lake's tables by similarity to `query`, most similar first.
/// Returns `(table index, score)` pairs.
pub fn rank_by_similarity(
    query: &LakeTable,
    lake: &[LakeTable],
    cfg: &SignatureConfig,
) -> Vec<(usize, f64)> {
    let mut scored: Vec<(usize, f64)> = lake
        .iter()
        .enumerate()
        .map(|(i, t)| (i, table_similarity(query, t, cfg)))
        .collect();
    scored.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("scores are finite"));
    scored
}

/// Groups near-duplicate tables: tables whose pairwise similarity reaches
/// `threshold` land in the same group (transitive closure — single-linkage
/// clustering). Returns the groups with ≥ 2 members, each sorted by index.
pub fn find_duplicate_groups(
    lake: &[LakeTable],
    threshold: f64,
    cfg: &SignatureConfig,
) -> Vec<Vec<usize>> {
    cluster_by_similarity(lake.len(), threshold, |i, j| {
        table_similarity(&lake[i], &lake[j], cfg)
    })
}

/// [`find_duplicate_groups`] for a lake whose tables share one `catalog`
/// (no per-pair alignment needed). Each table's signature maps are built
/// **once** and seed every comparison the table participates in (the
/// [`ic_core::signature_match_seeded`] contract: bit-identical to building
/// per pair), and each table gets an [`ic_index::Sketch`] whose
/// [`one_to_one_score_bound`](ic_index::Sketch::one_to_one_score_bound)
/// skips pairs that provably cannot reach `threshold` — without scoring
/// them at all.
///
/// The bound is only sound for fully injective matches with per-cell
/// scores ≤ 1, so pruning is gated on the configuration: both injectivity
/// flags set and no string-similarity weight (the default configuration
/// qualifies). Other configurations score every pair. Either way the
/// groups are identical to clustering a full
/// [`crate::history::similarity_matrix_cached`]: a pruned pair's true
/// score is below `threshold`, so it could never have joined a group.
pub fn find_duplicate_groups_shared(
    tables: &[&Instance],
    catalog: &Catalog,
    threshold: f64,
    cfg: &SignatureConfig,
) -> Vec<Vec<usize>> {
    let maps: Vec<InstanceSigMaps> = tables
        .iter()
        .map(|t| InstanceSigMaps::build(t, cfg))
        .collect();
    let sketches: Vec<Sketch> = tables.iter().map(|t| Sketch::build(t)).collect();
    let prune = cfg.mode.left_injective
        && cfg.mode.right_injective
        && cfg.score.string_sim_weight.is_none();
    cluster_by_similarity(tables.len(), threshold, |i, j| {
        if prune && sketches[i].one_to_one_score_bound(&sketches[j]) < threshold {
            // Sound skip: the true one-to-one score cannot reach the
            // threshold, so this pair never links a group.
            return 0.0;
        }
        signature_match_seeded(
            tables[i],
            tables[j],
            catalog,
            cfg,
            Some(&maps[i]),
            Some(&maps[j]),
        )
        .best
        .score()
    })
}

/// Single-linkage clustering by pairwise similarity: indices whose
/// similarity reaches `threshold` join the same group (transitive
/// closure); only groups with ≥ 2 members are returned, each sorted.
fn cluster_by_similarity(
    n: usize,
    threshold: f64,
    sim: impl Fn(usize, usize) -> f64,
) -> Vec<Vec<usize>> {
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    for i in 0..n {
        for j in (i + 1)..n {
            if sim(i, j) >= threshold {
                let (a, b) = (find(&mut parent, i), find(&mut parent, j));
                if a != b {
                    parent[a] = b;
                }
            }
        }
    }
    let mut groups: ic_model::FxHashMap<usize, Vec<usize>> = ic_model::FxHashMap::default();
    for i in 0..n {
        let root = find(&mut parent, i);
        groups.entry(root).or_default().push(i);
    }
    let mut out: Vec<Vec<usize>> = groups
        .into_values()
        .filter(|g| g.len() >= 2)
        .map(|mut g| {
            g.sort_unstable();
            g
        })
        .collect();
    out.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ic_model::Schema;

    /// Builds a lake table with the given rows over (A, B).
    fn table(rows: &[(&str, &str)]) -> LakeTable {
        let mut cat = Catalog::new(Schema::single("T", &["A", "B"]));
        let rel = cat.schema().rel("T").unwrap();
        let mut inst = Instance::new("t", &cat);
        for &(a, b) in rows {
            let va = cat.konst(a);
            let vb = if b.is_empty() {
                cat.fresh_null()
            } else {
                cat.konst(b)
            };
            inst.insert(rel, vec![va, vb]);
        }
        LakeTable::new(cat, inst)
    }

    /// A table over a *different* schema (A only).
    fn narrow_table(rows: &[&str]) -> LakeTable {
        let mut cat = Catalog::new(Schema::single("T", &["A"]));
        let rel = cat.schema().rel("T").unwrap();
        let mut inst = Instance::new("t", &cat);
        for &a in rows {
            let va = cat.konst(a);
            inst.insert(rel, vec![va]);
        }
        LakeTable::new(cat, inst)
    }

    #[test]
    fn ranking_prefers_the_near_duplicate() {
        let query = table(&[("x1", "y1"), ("x2", "y2"), ("x3", "y3")]);
        let lake = vec![
            table(&[("u", "v")]),                               // unrelated
            table(&[("x1", "y1"), ("x2", ""), ("x3", "y3")]),   // near-dup (one null)
            table(&[("x1", "y1"), ("x2", "y2"), ("x3", "y3")]), // exact dup
        ];
        let ranked = rank_by_similarity(&query, &lake, &SignatureConfig::default());
        assert_eq!(ranked[0].0, 2);
        assert!((ranked[0].1 - 1.0).abs() < 1e-9);
        assert_eq!(ranked[1].0, 1);
        assert!(ranked[1].1 > 0.8);
        assert_eq!(ranked[2].0, 0);
        assert!(ranked[2].1 < 0.2);
    }

    #[test]
    fn cross_schema_search_works() {
        // The query has only column A; the candidate has A and B. Alignment
        // pads the query with nulls, so the shared column drives the score.
        let query = narrow_table(&["x1", "x2"]);
        let wide = table(&[("x1", "y1"), ("x2", "y2")]);
        let unrelated = table(&[("q", "r"), ("s", "t")]);
        let cfg = SignatureConfig::default();
        let s_wide = table_similarity(&query, &wide, &cfg);
        let s_unrelated = table_similarity(&query, &unrelated, &cfg);
        assert!(s_wide > s_unrelated);
        assert!(s_wide > 0.5);
    }

    #[test]
    fn duplicate_groups_cluster_transitively() {
        let lake = vec![
            table(&[("a", "1"), ("b", "2")]), // 0: group A
            table(&[("a", "1"), ("b", "")]),  // 1: near 0
            table(&[("z", "9"), ("w", "8")]), // 2: group B
            table(&[("z", "9"), ("w", "8")]), // 3: dup of 2
            table(&[("solo", "42")]),         // 4: alone
        ];
        let groups = find_duplicate_groups(&lake, 0.8, &SignatureConfig::default());
        assert_eq!(groups, vec![vec![0, 1], vec![2, 3]]);
    }

    #[test]
    fn shared_catalog_groups_match_per_pair_scores() {
        // One shared catalog: the map-reusing path must produce the same
        // groups as scoring each pair from scratch.
        let mut cat = Catalog::new(Schema::single("T", &["A", "B"]));
        let rel = cat.schema().rel("T").unwrap();
        let mut mk = |rows: &[(&str, bool)]| {
            let mut inst = Instance::new("t", &cat);
            for &(a, null_b) in rows {
                let va = cat.konst(a);
                let vb = if null_b {
                    cat.fresh_null()
                } else {
                    cat.konst(&format!("{a}!"))
                };
                inst.insert(rel, vec![va, vb]);
            }
            inst
        };
        let tables = [
            mk(&[("a", false), ("b", false)]),
            mk(&[("a", false), ("b", true)]),
            mk(&[("z", false), ("w", false)]),
            mk(&[("z", false), ("w", false)]),
            mk(&[("solo", false)]),
        ];
        let refs: Vec<&Instance> = tables.iter().collect();
        let cfg = SignatureConfig::default();
        let groups = find_duplicate_groups_shared(&refs, &cat, 0.8, &cfg);
        assert_eq!(groups, vec![vec![0, 1], vec![2, 3]]);
        // Scores agree with from-scratch signature matching, bit for bit.
        let m = crate::history::similarity_matrix_cached(&refs, &cat, &cfg);
        for i in 0..refs.len() {
            for j in (i + 1)..refs.len() {
                let scratch = signature_match(refs[i], refs[j], &cat, &cfg).best.score();
                assert_eq!(m[i][j].to_bits(), scratch.to_bits());
            }
        }
    }

    #[test]
    fn sketch_pruned_groups_equal_full_matrix_groups() {
        // A lake of disjoint clusters plus one tiny outlier: the sketch
        // bound prunes cross-size pairs, yet the groups must equal
        // clustering the full cached similarity matrix — for the prunable
        // default config *and* for a general-mode config where pruning is
        // unsound and therefore disabled.
        let lake = ic_datagen::generate_lake(&ic_datagen::LakeParams {
            clusters: 3,
            versions_per_cluster: 3,
            rows: 14,
            ..ic_datagen::LakeParams::default()
        });
        let mut cat = lake.catalog;
        let mut tiny = Instance::new("tiny", &cat);
        let v = cat.konst("tiny_only");
        tiny.insert(lake.rel, vec![v, v, v, v]);
        let tables: Vec<&Instance> = lake.instances.iter().chain([&tiny]).collect();

        for cfg in [
            SignatureConfig::default(),
            SignatureConfig {
                mode: ic_core::MatchMode::general(),
                ..SignatureConfig::default()
            },
        ] {
            for threshold in [0.6, 0.9] {
                let fast = find_duplicate_groups_shared(&tables, &cat, threshold, &cfg);
                let m = crate::history::similarity_matrix_cached(&tables, &cat, &cfg);
                let full = cluster_by_similarity(tables.len(), threshold, |i, j| m[i][j]);
                assert_eq!(fast, full, "threshold {threshold}");
            }
        }
    }

    #[test]
    fn high_threshold_yields_no_groups() {
        let lake = vec![
            table(&[("a", "1")]),
            table(&[("a", "")]), // similar but not identical
        ];
        let groups = find_duplicate_groups(&lake, 0.999, &SignatureConfig::default());
        assert!(groups.is_empty());
    }
}
