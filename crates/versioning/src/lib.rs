//! # ic-versioning — data-versioning substrate
//!
//! Version operations (shuffle, row removal, column removal), the
//! line-diff baseline (Myers LCS, as computed by the `diff` command-line
//! tool), and the comparison harness behind the paper's Table 7: the
//! signature instance match recovers tuple correspondences that `diff`
//! structurally cannot.

#![warn(missing_docs)]

pub mod compare;
pub mod diff;
pub mod history;
pub mod incremental;
pub mod lake;
pub mod ops;

pub use compare::{compare_versions, MatchCounts, VersionComparison};
pub use diff::{diff_lines, diff_versions, serialize_instance_lines, serialize_lines, DiffStats};
pub use history::{
    find_endpoints, reconstruct_chain, similarity_matrix, similarity_matrix_cached,
    similarity_matrix_parallel,
};
pub use incremental::instance_delta;
pub use lake::{
    find_duplicate_groups, find_duplicate_groups_shared, rank_by_similarity, table_similarity,
    LakeTable,
};
pub use ops::{remove_rows, shuffle_rows, Variant, Version};
