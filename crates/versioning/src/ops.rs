//! Version operations (paper Table 7): given an original dataset, derive a
//! modified version by shuffling rows (S), removing rows (R), removing and
//! shuffling (RS), or removing columns (C).
//!
//! Removed columns are modeled with the paper's own schema-alignment trick
//! (Sec. 4.3): the instance keeps its arity, but every cell of a dropped
//! column is replaced by a fresh labeled null — "adding a column of
//! distinct nulls" — while the [`Version`] records that the column is
//! notionally absent so that the line-diff baseline serializes without it.

use ic_model::{AttrId, Catalog, Instance, RelId, TupleId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{RngExt, SeedableRng};

/// A derived version of a dataset.
#[derive(Debug)]
pub struct Version {
    /// The instance (same schema as the original).
    pub instance: Instance,
    /// Columns notionally removed (their cells hold fresh nulls).
    pub dropped_columns: Vec<AttrId>,
}

impl Version {
    /// Wraps an unmodified instance.
    pub fn plain(instance: Instance) -> Self {
        Self {
            instance,
            dropped_columns: Vec::new(),
        }
    }
}

/// The four modification variants of Table 7.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// Shuffle the rows.
    Shuffled,
    /// Remove a fraction of the rows (order preserved).
    RowsRemoved,
    /// Remove a fraction of the rows, then shuffle.
    RowsRemovedShuffled,
    /// Remove columns (replaced by fresh nulls; see module docs).
    ColumnsRemoved,
}

impl Variant {
    /// All variants with the paper's table labels.
    pub const ALL: [(Variant, &'static str); 4] = [
        (Variant::Shuffled, "S"),
        (Variant::RowsRemoved, "R"),
        (Variant::RowsRemovedShuffled, "RS"),
        (Variant::ColumnsRemoved, "C"),
    ];

    /// Applies the variant to `original`.
    ///
    /// * `remove_frac` — fraction of rows removed by R / RS;
    /// * `drop_cols` — number of columns dropped by C;
    /// * `seed` — RNG seed.
    pub fn apply(
        &self,
        original: &Instance,
        catalog: &mut Catalog,
        rel: RelId,
        remove_frac: f64,
        drop_cols: usize,
        seed: u64,
    ) -> Version {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut inst = original.clone();
        inst.set_name(format!("{}-{:?}", original.name(), self));
        match self {
            Variant::Shuffled => {
                shuffle_rows(&mut inst, rel, &mut rng);
                Version::plain(inst)
            }
            Variant::RowsRemoved => {
                remove_rows(&mut inst, rel, remove_frac, &mut rng);
                Version::plain(inst)
            }
            Variant::RowsRemovedShuffled => {
                remove_rows(&mut inst, rel, remove_frac, &mut rng);
                shuffle_rows(&mut inst, rel, &mut rng);
                Version::plain(inst)
            }
            Variant::ColumnsRemoved => {
                let arity = catalog.schema().relation(rel).arity();
                let dropped: Vec<AttrId> = (0..drop_cols.min(arity))
                    .map(|i| AttrId(i as u16))
                    .collect();
                for attr in &dropped {
                    let ids: Vec<TupleId> = inst.tuples(rel).iter().map(|t| t.id()).collect();
                    for tid in ids {
                        let n = catalog.fresh_null();
                        inst.set_value(tid, *attr, n);
                    }
                }
                Version {
                    instance: inst,
                    dropped_columns: dropped,
                }
            }
        }
    }
}

/// Shuffles the rows of `rel` in place.
pub fn shuffle_rows(instance: &mut Instance, rel: RelId, rng: &mut StdRng) {
    let n = instance.tuples(rel).len();
    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(rng);
    instance.permute(rel, &order);
}

/// Removes `frac` of the rows of `rel`, preserving the order of the rest.
/// Returns the removed tuple ids.
pub fn remove_rows(
    instance: &mut Instance,
    rel: RelId,
    frac: f64,
    rng: &mut StdRng,
) -> Vec<TupleId> {
    let ids: Vec<TupleId> = instance.tuples(rel).iter().map(|t| t.id()).collect();
    let n_remove = (ids.len() as f64 * frac).round() as usize;
    let mut chosen: Vec<TupleId> = Vec::with_capacity(n_remove);
    let mut pool = ids;
    for _ in 0..n_remove.min(pool.len()) {
        let i = rng.random_range(0..pool.len());
        chosen.push(pool.swap_remove(i));
    }
    for &tid in &chosen {
        instance.remove(tid);
    }
    chosen
}

#[cfg(test)]
mod tests {
    use super::*;
    use ic_model::Schema;

    fn setup(n: usize) -> (Catalog, Instance, RelId) {
        let mut cat = Catalog::new(Schema::single("R", &["A", "B"]));
        let rel = cat.schema().rel("R").unwrap();
        let mut inst = Instance::new("orig", &cat);
        for i in 0..n {
            let a = cat.konst(&format!("a{i}"));
            let b = cat.konst(&format!("b{i}"));
            inst.insert(rel, vec![a, b]);
        }
        (cat, inst, rel)
    }

    #[test]
    fn shuffled_keeps_all_rows() {
        let (mut cat, inst, rel) = setup(50);
        let v = Variant::Shuffled.apply(&inst, &mut cat, rel, 0.0, 0, 1);
        assert_eq!(v.instance.num_tuples(), 50);
        // Same multiset of rows, different order (with overwhelming prob.).
        let orig: Vec<_> = inst
            .tuples(rel)
            .iter()
            .map(|t| t.values().to_vec())
            .collect();
        let new: Vec<_> = v
            .instance
            .tuples(rel)
            .iter()
            .map(|t| t.values().to_vec())
            .collect();
        assert_ne!(orig, new);
        let mut a = orig.clone();
        let mut b = new.clone();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn rows_removed_preserves_order() {
        let (mut cat, inst, rel) = setup(100);
        let v = Variant::RowsRemoved.apply(&inst, &mut cat, rel, 0.2, 0, 2);
        assert_eq!(v.instance.num_tuples(), 80);
        // Remaining rows appear in original relative order.
        let orig: Vec<_> = inst.tuples(rel).iter().map(|t| t.id()).collect();
        let remaining: Vec<_> = v.instance.tuples(rel).iter().map(|t| t.id()).collect();
        let mut pos = 0usize;
        for id in &remaining {
            let p = orig.iter().position(|o| o == id).expect("still exists");
            assert!(p >= pos);
            pos = p;
        }
    }

    #[test]
    fn columns_removed_nulls_cells_and_records() {
        let (mut cat, inst, rel) = setup(10);
        let v = Variant::ColumnsRemoved.apply(&inst, &mut cat, rel, 0.0, 1, 3);
        assert_eq!(v.dropped_columns, vec![AttrId(0)]);
        for t in v.instance.tuples(rel) {
            assert!(t.value(AttrId(0)).is_null());
            assert!(t.value(AttrId(1)).is_const());
        }
        // All fresh nulls are distinct.
        assert_eq!(v.instance.vars().len(), 10);
    }

    #[test]
    fn rs_removes_and_shuffles() {
        let (mut cat, inst, rel) = setup(100);
        let v = Variant::RowsRemovedShuffled.apply(&inst, &mut cat, rel, 0.1, 0, 4);
        assert_eq!(v.instance.num_tuples(), 90);
    }

    #[test]
    fn deterministic_under_seed() {
        let (mut cat, inst, rel) = setup(30);
        let v1 = Variant::RowsRemovedShuffled.apply(&inst, &mut cat, rel, 0.2, 0, 7);
        let mut cat2 = cat.clone();
        let v2 = Variant::RowsRemovedShuffled.apply(&inst, &mut cat2, rel, 0.2, 0, 7);
        let a: Vec<_> = v1.instance.tuples(rel).iter().map(|t| t.id()).collect();
        let b: Vec<_> = v2.instance.tuples(rel).iter().map(|t| t.id()).collect();
        assert_eq!(a, b);
    }
}
