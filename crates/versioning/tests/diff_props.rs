//! Property test: the Myers O(ND) match count equals the classic quadratic
//! LCS dynamic program on random sequences.

use ic_versioning::diff_lines;
use proptest::prelude::*;

fn lcs_dp(a: &[String], b: &[String]) -> usize {
    let n = a.len();
    let m = b.len();
    let mut dp = vec![vec![0usize; m + 1]; n + 1];
    for i in 1..=n {
        for j in 1..=m {
            dp[i][j] = if a[i - 1] == b[j - 1] {
                dp[i - 1][j - 1] + 1
            } else {
                dp[i - 1][j].max(dp[i][j - 1])
            };
        }
    }
    dp[n][m]
}

fn seq() -> impl Strategy<Value = Vec<String>> {
    prop::collection::vec((0u8..6).prop_map(|k| format!("line{k}")), 0..24)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn myers_matches_equal_lcs(a in seq(), b in seq()) {
        let d = diff_lines(&a, &b);
        let lcs = lcs_dp(&a, &b);
        prop_assert_eq!(d.matches, lcs, "a={:?} b={:?}", a, b);
        prop_assert_eq!(d.left_only, a.len() - lcs);
        prop_assert_eq!(d.right_only, b.len() - lcs);
    }

    #[test]
    fn diff_is_symmetric_in_match_count(a in seq(), b in seq()) {
        let ab = diff_lines(&a, &b);
        let ba = diff_lines(&b, &a);
        prop_assert_eq!(ab.matches, ba.matches);
        prop_assert_eq!(ab.left_only, ba.right_only);
    }
}
