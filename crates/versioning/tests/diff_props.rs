//! Property test: the Myers O(ND) match count equals the classic quadratic
//! LCS dynamic program on random sequences. Runs on `ic-testkit`.

use ic_testkit::{Gen, Runner};
use ic_versioning::diff_lines;
use rand::RngExt;

fn lcs_dp(a: &[String], b: &[String]) -> usize {
    let n = a.len();
    let m = b.len();
    let mut dp = vec![vec![0usize; m + 1]; n + 1];
    for i in 1..=n {
        for j in 1..=m {
            dp[i][j] = if a[i - 1] == b[j - 1] {
                dp[i - 1][j - 1] + 1
            } else {
                dp[i - 1][j].max(dp[i][j - 1])
            };
        }
    }
    dp[n][m]
}

/// Up to 23 lines from a 6-symbol alphabet (the proptest suite's `0..24`).
fn gen_seq(g: &mut Gen) -> Vec<String> {
    g.vec_of(23, |g| {
        let k = g.rng().random_range(0..6u8);
        format!("line{k}")
    })
}

#[test]
fn myers_matches_equal_lcs() {
    Runner::new("myers_matches_equal_lcs")
        .cases(256)
        .max_size(23)
        .run(
            |g| (gen_seq(g), gen_seq(g)),
            |(a, b)| {
                let d = diff_lines(a, b);
                let lcs = lcs_dp(a, b);
                assert_eq!(d.matches, lcs, "a={a:?} b={b:?}");
                assert_eq!(d.left_only, a.len() - lcs);
                assert_eq!(d.right_only, b.len() - lcs);
            },
        );
}

#[test]
fn diff_is_symmetric_in_match_count() {
    Runner::new("diff_is_symmetric_in_match_count")
        .cases(256)
        .max_size(23)
        .run(
            |g| (gen_seq(g), gen_seq(g)),
            |(a, b)| {
                let ab = diff_lines(a, b);
                let ba = diff_lines(b, a);
                assert_eq!(ab.matches, ba.matches);
                assert_eq!(ab.left_only, ba.right_only);
            },
        );
}
