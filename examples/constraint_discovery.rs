//! Approximate constraint discovery over an incomplete instance, and the
//! discovered keys feeding back into matching as priors.
//!
//! `inject_near_constraints` plants a composite key and two FDs with a
//! known violation rate, then sprinkles labeled nulls. `ic-discovery`
//! computes each candidate's possible-world violation interval
//! `[g3_min, g3_max]` — the best and worst case over every valuation of
//! the nulls — and a TANE-style lattice search reports every *minimal*
//! constraint within the epsilon gate. Discovered keys then become
//! [`MatchPriors`]: a hint for the signature algorithm's candidate
//! ordering that, by contract, never changes a similarity score (checked
//! here bit-for-bit).
//!
//! Run with: `cargo run --release --example constraint_discovery`

use instance_comparison::core::Comparator;
use instance_comparison::datagen::{inject_near_constraints, NearConstraintParams};
use instance_comparison::discovery::{discover, priors_from_keys, DiscoveryConfig};

fn main() {
    let params = NearConstraintParams::default();
    let nc = inject_near_constraints(&params);
    let schema = nc.catalog.schema();
    let rel = schema.relation(nc.rel);
    println!(
        "planted NC({}) with {} rows, {} violating rows per constraint (g3 = {:.4}), null rate {}",
        rel.attrs().collect::<Vec<_>>().join(", "),
        params.rows,
        nc.violations,
        nc.epsilon,
        params.null_rate,
    );

    // Gate at the planted violation ratio: nulls can only lower g3_min,
    // so every planted constraint must be recalled.
    let cfg = DiscoveryConfig {
        epsilon: nc.epsilon,
        ..DiscoveryConfig::default()
    };
    let found = discover(&nc.instance, &nc.catalog, &cfg).unwrap();

    println!("\ndiscovered keys (epsilon = {:.4}):", cfg.epsilon);
    for key in &found.keys {
        let names: Vec<_> = key.attrs.iter().map(|&a| rel.attr_name(a)).collect();
        println!(
            "  [{}]  g3 in [{:.4}, {:.4}]  covered {}",
            names.join(", "),
            key.g3.g3_min,
            key.g3.g3_max,
            key.covered
        );
    }
    println!("discovered FDs:");
    for fd in &found.fds {
        let lhs: Vec<_> = fd.lhs.iter().map(|&a| rel.attr_name(a)).collect();
        println!(
            "  [{}] -> {}  g3 in [{:.4}, {:.4}]  support {}",
            lhs.join(", "),
            rel.attr_name(fd.rhs),
            fd.g3.g3_min,
            fd.g3.g3_max,
            fd.support
        );
    }

    let planted_key_found = found.keys.iter().any(|k| k.attrs == nc.key);
    let planted_fds_found = nc
        .fds
        .iter()
        .all(|(lhs, rhs)| found.fds.iter().any(|fd| &fd.lhs == lhs && fd.rhs == *rhs));
    println!(
        "\nrecall of planted constraints: key {}, FDs {}",
        if planted_key_found { "yes" } else { "NO" },
        if planted_fds_found { "yes" } else { "NO" },
    );
    assert!(planted_key_found && planted_fds_found);

    // Feed the keys back as match priors and verify the prior contract:
    // the self-comparison score is bit-identical with and without them.
    let priors = priors_from_keys(&found.keys);
    let plain = Comparator::new(&nc.catalog).build().unwrap();
    let primed = Comparator::new(&nc.catalog)
        .match_priors(priors)
        .build()
        .unwrap();
    let a = plain.signature(&nc.instance, &nc.instance).unwrap();
    let b = primed.signature(&nc.instance, &nc.instance).unwrap();
    assert_eq!(a.best.score().to_bits(), b.best.score().to_bits());
    println!(
        "prior contract holds: score {:.6} unchanged under discovered-key priors",
        b.best.score()
    );
}
