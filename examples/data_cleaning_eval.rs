//! Empirical evaluation of data-cleaning systems (paper Sec. 7.2, Table 5):
//! four repair strategies clean the same dirty instance; the plain F1
//! punishes systems that mark conflicts with labeled nulls, while the
//! instance-similarity score credits them.
//!
//! Run with: `cargo run --release --example data_cleaning_eval`

use instance_comparison::cleaning::{
    bus_cleaning_dataset, inject_errors, instance_f1, repair_f1, violations, RepairSystem,
};
use instance_comparison::core::{signature_match, MatchMode, SignatureConfig};

fn main() {
    let rows = 5_000;
    let (mut cat, clean, fds) = bus_cleaning_dataset(rows, 7);
    let dirty = inject_errors(&clean, &fds, &mut cat, 0.05, 7);
    println!(
        "Bus dataset: {rows} rows, {} injected errors, {} FDs",
        dirty.errors.len(),
        fds.len()
    );
    let groups: usize = fds
        .iter()
        .map(|fd| violations(&dirty.instance, fd).len())
        .sum();
    println!("violation groups detected: {groups}\n");

    let sig_cfg = SignatureConfig {
        mode: MatchMode::one_to_one(),
        ..Default::default()
    };

    println!(
        "{:<10} {:>7} {:>9} {:>10} {:>11}",
        "system", "F1", "F1 Inst.", "Sig Score", "nulls used"
    );
    for (name, system) in RepairSystem::all() {
        let mut sys_cat = cat.clone();
        let repaired = system.repair(&dirty.instance, &fds, &mut sys_cat, 7);
        let f1 = repair_f1(&clean, &dirty.instance, &repaired, &dirty.errors).f1;
        let f1i = instance_f1(&clean, &repaired).f1;
        let sig = signature_match(&repaired, &clean, &sys_cat, &sig_cfg);
        println!(
            "{:<10} {:>7.3} {:>9.3} {:>10.3} {:>11}",
            name,
            f1,
            f1i,
            sig.best.score(),
            repaired.num_null_cells(),
        );
    }

    println!(
        "\nNote how a system that replaces conflicts with labeled nulls keeps\n\
         a high similarity score even though F1 counts every null as wrong."
    );
}
