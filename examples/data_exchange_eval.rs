//! Evaluating data-exchange solutions (paper Sec. 7.2, Table 6): chase a
//! source under correct, redundant, and wrong schema mappings; compare each
//! solution against the core with the Row-score baseline, homomorphism
//! checks, and the signature similarity.
//!
//! Run with: `cargo run --release --example data_exchange_eval`

use instance_comparison::core::{is_homomorphic, signature_match, MatchMode, SignatureConfig};
use instance_comparison::exchange::{core_of, doctors_scenario};

fn main() {
    let sc = doctors_scenario(800, 0.2, 42);
    println!(
        "source: {} tuples; gold core: {} tuples",
        sc.source.num_tuples(),
        sc.gold.num_tuples()
    );

    // Cross-check: the Skolem-chased gold really is a core.
    let refolded = core_of(&sc.gold, &sc.catalog);
    println!(
        "block-folding the gold removes {} tuples (0 = it is a core)\n",
        sc.gold.num_tuples() - refolded.num_tuples()
    );

    let sig_cfg = SignatureConfig {
        mode: MatchMode::left_functional(),
        ..Default::default()
    };
    println!(
        "{:<8} {:>7} {:>10} {:>10} {:>10} {:>10}",
        "solution", "#T", "miss.rows", "row score", "sig score", "universal"
    );
    for (label, sol) in [("W", &sc.wrong), ("U1", &sc.user1), ("U2", &sc.user2)] {
        let (missing, row) = sc.baseline_metrics(sol);
        let sig = signature_match(sol, &sc.gold, &sc.catalog, &sig_cfg);
        println!(
            "{:<8} {:>7} {:>10} {:>10.3} {:>10.3} {:>10}",
            label,
            sol.num_tuples(),
            missing,
            row,
            sig.best.score(),
            is_homomorphic(sol, &sc.gold),
        );
    }

    println!(
        "\nThe wrong mapping W keeps a perfect Row score (same cardinality)\n\
         while the similarity exposes it; the redundancy of U1 vs U2 shows\n\
         up as a lower similarity to the core."
    );
}
