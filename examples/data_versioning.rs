//! Data versioning (paper Sec. 7.2, Table 7): recover what changed between
//! two versions of a dataset without shared keys, and see why a line-based
//! `diff` cannot.
//!
//! Run with: `cargo run --release --example data_versioning`

use instance_comparison::core::{ScoreConfig, SignatureConfig};
use instance_comparison::datagen::{evolve_chain, mod_cell, Dataset, EvolveParams};
use instance_comparison::versioning::{
    compare_versions, find_endpoints, reconstruct_chain, similarity_matrix, Variant, Version,
};

fn main() {
    // An Iris-shaped table and four derived versions.
    let (mut cat, original) = Dataset::Iris.generate(120, 2024);
    let rel = cat.schema().rel("Iris").unwrap();
    let orig = Version::plain(original);

    println!("original: {} tuples\n", orig.instance.num_tuples());
    println!(
        "{:<22} {:>6} {:>8} {:>9} {:>9} | {:>6} {:>8} {:>9} {:>9}",
        "variant", "diff#M", "diff#LNM", "diff#RNM", "", "sig#M", "sig#LNM", "sig#RNM", "score"
    );
    for (variant, label) in Variant::ALL {
        let v = variant.apply(&orig.instance, &mut cat, rel, 0.175, 1, 7);
        let c = compare_versions(&orig, &v, &cat, rel);
        println!(
            "{:<22} {:>6} {:>8} {:>9} {:>9} | {:>6} {:>8} {:>9} {:>9.3}",
            format!("{label} ({variant:?})"),
            c.diff.matches,
            c.diff.left_non_matching,
            c.diff.right_non_matching,
            "",
            c.signature.matches,
            c.signature.left_non_matching,
            c.signature.right_non_matching,
            c.signature_score,
        );
    }

    // Which of two candidate versions is closer to the original? The
    // similarity score orders them even when rows were shuffled and values
    // were nulled out.
    println!("\nOrdering versions by similarity (modCell noise):");
    for noise in [0.02, 0.10, 0.30] {
        let sc = mod_cell(Dataset::Iris, 120, noise, 99);
        let score = sc.gold_score(&ScoreConfig::default());
        println!(
            "  {:>4.0}% cells changed -> gold similarity {score:.3}",
            noise * 100.0
        );
    }

    // Recover an unknown version history: five shuffled versions land in a
    // data lake; the pairwise similarity matrix reveals the chain order.
    println!("\nReconstructing a 5-version history from similarities:");
    let chain = evolve_chain(Dataset::Bikeshare, 200, 4, &EvolveParams::default(), 2024);
    let refs: Vec<&instance_comparison::model::Instance> = chain.versions.iter().collect();
    let m = similarity_matrix(&refs, &chain.catalog, &SignatureConfig::default());
    for (i, row) in m.iter().enumerate() {
        let cells: Vec<String> = row.iter().map(|s| format!("{s:.3}")).collect();
        println!("  v{i}: [{}]", cells.join(", "));
    }
    let (a, b) = find_endpoints(&m);
    let order = reconstruct_chain(&m, a.min(b));
    let labels: Vec<String> = order.iter().map(|i| format!("v{i}")).collect();
    println!("  inferred chain: {}", labels.join(" -> "));
}
