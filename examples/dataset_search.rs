//! Dataset search and deduplication in a data lake (paper Sec. 1):
//! given a query table, rank a lake of heterogeneous tables by similarity
//! — schemas are aligned automatically — and cluster near-duplicates.
//!
//! Run with: `cargo run --release --example dataset_search`

use instance_comparison::core::SignatureConfig;
use instance_comparison::datagen::{evolve_chain, Dataset, EvolveParams};
use instance_comparison::model::{Catalog, Instance, Schema};
use instance_comparison::versioning::{find_duplicate_groups, rank_by_similarity, LakeTable};

/// An unrelated table with its own schema (simulating lake heterogeneity).
fn unrelated_table(seed: u64) -> LakeTable {
    let mut cat = Catalog::new(Schema::single("Sensors", &["sensor", "reading", "unit"]));
    let rel = cat.schema().rel("Sensors").unwrap();
    let mut inst = Instance::new("sensors", &cat);
    for i in 0..100 {
        let s = cat.konst(&format!("s{}", (seed + i) % 40));
        let r = cat.konst(&format!("{}", (seed * 31 + i * 7) % 1000));
        let u = cat.konst("C");
        inst.insert(rel, vec![s, r, u]);
    }
    LakeTable::new(cat, inst)
}

fn main() {
    // Build a small lake: several evolved versions of an Iris-like table
    // (mutual near-duplicates) plus unrelated tables.
    let chain = evolve_chain(Dataset::Iris, 100, 3, &EvolveParams::default(), 77);
    let mut lake: Vec<LakeTable> = Vec::new();
    let mut labels: Vec<String> = Vec::new();
    for (i, v) in chain.versions.iter().enumerate() {
        lake.push(LakeTable::new(chain.catalog.clone(), v.clone()));
        labels.push(format!("iris-v{i}"));
    }
    for k in 0..3 {
        lake.push(unrelated_table(1000 + k));
        labels.push(format!("sensors-{k}"));
    }

    // Search: which lake tables look like the newest iris version?
    let query_idx = chain.versions.len() - 1;
    let query = LakeTable::new(chain.catalog.clone(), chain.versions[query_idx].clone());
    println!("query: {}\n", labels[query_idx]);
    println!("{:<12} {:>8}", "table", "score");
    for (idx, score) in rank_by_similarity(&query, &lake, &SignatureConfig::default()) {
        println!("{:<12} {:>8.3}", labels[idx], score);
    }

    // Deduplication: cluster near-duplicates at a 0.6 threshold.
    let groups = find_duplicate_groups(&lake, 0.6, &SignatureConfig::default());
    println!("\nnear-duplicate groups (threshold 0.6):");
    for g in groups {
        let names: Vec<&str> = g.iter().map(|&i| labels[i].as_str()).collect();
        println!("  {{{}}}", names.join(", "));
    }
}
