//! Dataset search and deduplication in a data lake (paper Sec. 1):
//! given a query table, rank a lake of tables by similarity without
//! comparing the query against every entry. A [`CatalogIndex`] prefilters
//! by per-instance sketches and signature-bucket overlap, then runs the
//! full signature comparison only on surviving candidates — every returned
//! score is bit-identical to the brute-force comparison of the same pair.
//!
//! The example also checks its own work: it runs the O(n) brute-force scan
//! the index replaces, reports recall@k against it, and shows the fraction
//! of the lake that actually got a full comparison.
//!
//! Run with: `cargo run --release --example dataset_search`

use instance_comparison::core::{Comparator, SignatureConfig};
use instance_comparison::datagen::{generate_lake, LakeParams};
use instance_comparison::index::{CatalogIndex, SearchOptions};
use instance_comparison::model::Instance;
use instance_comparison::versioning::find_duplicate_groups_shared;
use std::sync::Arc;

fn main() {
    // A lake of 24 clusters × 4 evolved versions sharing one catalog:
    // versions within a cluster are mutual near-duplicates, clusters are
    // constant-disjoint from each other.
    let lake = generate_lake(&LakeParams {
        clusters: 24,
        versions_per_cluster: 4,
        rows: 24,
        arity: 4,
        ..LakeParams::default()
    });
    let pins: Vec<Arc<Instance>> = lake.instances.iter().cloned().map(Arc::new).collect();

    let cfg = SignatureConfig::default();
    let index = CatalogIndex::new(&cfg);
    index.sync(pins.iter().map(|p| (p.name(), p)));
    let cmp = Comparator::new(&lake.catalog).build().unwrap();

    // Search: which lake tables look like cluster 2's newest version?
    let query = &pins[lake.index_of(2, 3)];
    let k = 5;
    let out = index
        .topk(query, k, &cmp, &SearchOptions::default())
        .unwrap();
    println!("query: {}  (lake of {} tables)\n", query.name(), out.total);
    println!("{:<8} {:>8} {:>7}", "table", "score", "pairs");
    for hit in &out.hits {
        println!("{:<8} {:>8.3} {:>7}", hit.name, hit.score, hit.pairs);
    }

    // Brute force the same ranking to measure recall. Scores come from the
    // same comparator, so any hit the index returns must match bit-for-bit.
    let mut brute: Vec<(String, f64)> = pins
        .iter()
        .map(|p| {
            let score = cmp.signature(query, p).unwrap().best.score();
            (p.name().to_string(), score)
        })
        .collect();
    brute.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then_with(|| a.0.cmp(&b.0)));
    let found = out
        .hits
        .iter()
        .filter(|h| {
            brute[..k]
                .iter()
                .any(|(name, score)| *name == h.name && score.to_bits() == h.score.to_bits())
        })
        .count();
    println!(
        "\nrecall@{k}: {:.2}  (full comparisons: {}/{} = {:.0}% of the lake)",
        found as f64 / k as f64,
        out.compared,
        out.total,
        100.0 * out.compared as f64 / out.total as f64
    );

    // Deduplication: cluster near-duplicates at a 0.6 threshold. The
    // shared-catalog variant reuses signature maps and skips pairs whose
    // sketch bound already rules the threshold out.
    let tables: Vec<&Instance> = lake.instances.iter().collect();
    let groups = find_duplicate_groups_shared(&tables, &lake.catalog, 0.6, &cfg);
    println!("\nnear-duplicate groups (threshold 0.6):");
    for g in groups {
        let names: Vec<&str> = g.iter().map(|&i| lake.instances[i].name()).collect();
        println!("  {{{}}}", names.join(", "));
    }
}
