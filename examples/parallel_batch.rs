//! Batch comparison on the thread pool through the [`Comparator`] facade:
//! score a sweep of instance versions with `.compare_many`, demonstrate
//! config validation at `.build()` (an `Error` instead of a mid-search
//! panic on NaN λ), the signature algorithm's wall-clock budget
//! (`timed_out` / `Error::Budget` from the strict variant), and an
//! observed run whose span tree and counters print at the end.
//!
//! Run with: `cargo run --release --example parallel_batch`
//! Vary the worker count with `IC_POOL_THREADS=n` (or `.threads(n)` on the
//! builder) — scores and all non-`pool.*` counters are bit-identical at
//! any setting.

use instance_comparison::core::{Comparator, Error};
use instance_comparison::model::{Catalog, Instance, RelId, Schema};
use instance_comparison::obs::MemorySink;
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let mut cat = Catalog::new(Schema::single("R", &["A", "B", "C"]));
    let rel = RelId(0);

    // A chain of versions: each differs from the base in a few cells, with
    // some values unknown (labeled nulls).
    let mut versions: Vec<Instance> = Vec::new();
    for v in 0..5 {
        let mut inst = Instance::new(format!("v{v}"), &cat);
        for i in 0..400 {
            let a = cat.konst(&format!("key{i}"));
            let b = if (i + v) % 23 == 0 {
                cat.fresh_null()
            } else {
                cat.konst(&format!("b{}", (i * 7 + v) % 50))
            };
            let c = cat.konst(&format!(
                "c{}",
                (i + 11 * ((i + v) % 17 == 0) as usize) % 40
            ));
            inst.insert(rel, vec![a, b, c]);
        }
        versions.push(inst);
    }
    let pairs: Vec<(&Instance, &Instance)> = versions.windows(2).map(|w| (&w[0], &w[1])).collect();

    println!(
        "pool threads: {}",
        instance_comparison::pool::current_threads()
    );

    // Validation happens once at build(); every call through the handle
    // can then trust the configuration.
    let cmp = Comparator::new(&cat)
        .lambda(0.5)
        .build()
        .expect("default config is valid");
    let batch = cmp.compare_many(&pairs).expect("schemas match");
    for (i, c) in batch.iter().enumerate() {
        println!(
            "v{i} -> v{}: similarity {:.6}  ({} pairs, {} updated tuples)",
            i + 1,
            c.score(),
            c.outcome.best.pairs.len(),
            c.diff.updated.len()
        );
    }

    // Degenerate configs are rejected up front instead of panicking deep in
    // the search.
    match Comparator::new(&cat).lambda(f64::NAN).build() {
        Err(e) => println!("NaN lambda rejected: {e}"),
        Ok(_) => unreachable!("NaN lambda must not validate"),
    }

    // A zero budget returns the partial (here: empty) match and says so;
    // the strict variant turns the same stop into an `Error::Budget`.
    let strapped = Comparator::new(&cat)
        .budget(Duration::ZERO)
        .build()
        .expect("a zero budget is valid, just unhelpful");
    let out = strapped
        .signature(&versions[0], &versions[1])
        .expect("schemas match");
    println!(
        "zero budget: timed_out={} pairs={} score={:.3}",
        out.timed_out,
        out.best.pairs.len(),
        out.best.score()
    );
    match strapped.signature_strict(&versions[0], &versions[1]) {
        Err(e @ Error::Budget { .. }) => println!("strict variant: {e}"),
        other => unreachable!("expected a budget error, got {other:?}"),
    }

    // Observability: rerun one comparison with an in-memory sink installed
    // and print where the time went.
    let sink = Arc::new(MemorySink::new());
    let observed = Comparator::new(&cat)
        .observer("parallel_batch", sink.clone())
        .build()
        .expect("default config is valid");
    observed
        .compare(&versions[0], &versions[1])
        .expect("schemas match");
    let report = sink.last().expect("one report per observation");
    println!("\nspan tree of v0 -> v1:\n{}", report.render_tree());
    for name in [
        "score.pairs",
        "sig.probe.candidates_found",
        "sig.probe.candidates_consumed",
    ] {
        if let Some(v) = report.counter(name) {
            println!("{name} = {v}");
        }
    }
}
