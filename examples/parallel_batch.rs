//! Batch comparison on the thread pool: score a sweep of instance versions
//! with `compare_many`, demonstrate config validation (`ConfigError`
//! instead of a mid-search panic on NaN λ) and the signature algorithm's
//! wall-clock budget (`timed_out`).
//!
//! Run with: `cargo run --release --example parallel_batch`
//! Vary the worker count with `IC_POOL_THREADS=n` — the scores are
//! bit-identical at any setting.

use instance_comparison::core::{
    compare_many_checked, signature_match, ScoreConfig, SignatureConfig,
};
use instance_comparison::model::{Catalog, Instance, RelId, Schema};
use std::time::Duration;

fn main() {
    let mut cat = Catalog::new(Schema::single("R", &["A", "B", "C"]));
    let rel = RelId(0);

    // A chain of versions: each differs from the base in a few cells, with
    // some values unknown (labeled nulls).
    let mut versions: Vec<Instance> = Vec::new();
    for v in 0..5 {
        let mut inst = Instance::new(&format!("v{v}"), &cat);
        for i in 0..400 {
            let a = cat.konst(&format!("key{i}"));
            let b = if (i + v) % 23 == 0 {
                cat.fresh_null()
            } else {
                cat.konst(&format!("b{}", (i * 7 + v) % 50))
            };
            let c = cat.konst(&format!(
                "c{}",
                (i + 11 * ((i + v) % 17 == 0) as usize) % 40
            ));
            inst.insert(rel, vec![a, b, c]);
        }
        versions.push(inst);
    }
    let pairs: Vec<(&Instance, &Instance)> = versions.windows(2).map(|w| (&w[0], &w[1])).collect();

    println!(
        "pool threads: {}",
        instance_comparison::pool::current_threads()
    );

    let cfg = SignatureConfig::default();
    let batch = compare_many_checked(&pairs, &cat, &cfg).expect("default config is valid");
    for (i, c) in batch.iter().enumerate() {
        println!(
            "v{i} -> v{}: similarity {:.6}  ({} pairs, {} updated tuples)",
            i + 1,
            c.score(),
            c.outcome.best.pairs.len(),
            c.diff.updated.len()
        );
    }

    // Degenerate configs are rejected up front instead of panicking deep in
    // the search.
    let bad = SignatureConfig {
        score: ScoreConfig {
            lambda: f64::NAN,
            ..Default::default()
        },
        ..Default::default()
    };
    match compare_many_checked(&pairs, &cat, &bad) {
        Err(e) => println!("NaN lambda rejected: {e}"),
        Ok(_) => unreachable!("NaN lambda must not validate"),
    }

    // A zero budget returns the partial (here: empty) match and says so.
    let strapped = SignatureConfig {
        budget: Some(Duration::ZERO),
        ..Default::default()
    };
    let out = signature_match(&versions[0], &versions[1], &cat, &strapped);
    println!(
        "zero budget: timed_out={} pairs={} score={:.3}",
        out.timed_out,
        out.best.pairs.len(),
        out.best.score()
    );
}
