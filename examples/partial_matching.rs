//! Partial matches and string similarity (paper Sec. 6.3 + Sec. 9):
//! comparing instances whose constants were perturbed by typos. Complete
//! matching drops every typo'd tuple; the partial variant keeps them and
//! the Levenshtein extension credits near-identical constants.
//!
//! Run with: `cargo run --release --example partial_matching`

use instance_comparison::core::{compare, explain, CellChange, ScoreConfig, SignatureConfig};
use instance_comparison::datagen::{mod_cell_typos, Dataset};

fn main() {
    let sc = mod_cell_typos(Dataset::Bikeshare, 400, 0.20, 99);
    println!(
        "Bike-like scenario: {} vs {} tuples, 20% of cells typo'd or nulled\n",
        sc.source.num_tuples(),
        sc.target.num_tuples()
    );

    let complete_cfg = SignatureConfig::default();
    let complete = compare(&sc.source, &sc.target, &sc.catalog, &complete_cfg);
    println!(
        "complete matching:        score {:.3}  ({} matched, {} deleted, {} inserted)",
        complete.score(),
        complete.outcome.best.pairs.len(),
        complete.diff.deleted.len(),
        complete.diff.inserted.len()
    );

    let partial_cfg = SignatureConfig {
        partial: true,
        ..SignatureConfig::default()
    };
    let partial = compare(&sc.source, &sc.target, &sc.catalog, &partial_cfg);
    println!(
        "partial matching:         score {:.3}  ({} matched, {} updated pairs)",
        partial.score(),
        partial.outcome.best.pairs.len(),
        partial.diff.updated.len()
    );

    let strsim_cfg = SignatureConfig {
        partial: true,
        score: ScoreConfig {
            string_sim_weight: Some(0.8),
            ..ScoreConfig::default()
        },
        ..SignatureConfig::default()
    };
    let strsim = compare(&sc.source, &sc.target, &sc.catalog, &strsim_cfg);
    println!("partial + levenshtein:    score {:.3}", strsim.score());

    // Show a couple of the conflicts the partial match surfaced.
    let diff = explain(&partial.outcome.best, &sc.source, &sc.target);
    println!("\nexample conflicts found by the partial match:");
    let mut shown = 0;
    for p in &diff.updated {
        let has_conflict = p
            .cells
            .iter()
            .any(|c| matches!(c, CellChange::ConstantConflict));
        if !has_conflict {
            continue;
        }
        let lt = sc.source.tuple(p.left).unwrap();
        let rt = sc.target.tuple(p.right).unwrap();
        for (i, c) in p.cells.iter().enumerate() {
            if matches!(c, CellChange::ConstantConflict) {
                let attr = instance_comparison::model::AttrId(i as u16);
                println!(
                    "  t{}.{} = {:?}   vs   t{}.{} = {:?}",
                    p.left.0,
                    sc.catalog.schema().relation(p.rel).attr_name(attr),
                    sc.catalog.render(lt.value(attr)),
                    p.right.0,
                    sc.catalog.schema().relation(p.rel).attr_name(attr),
                    sc.catalog.render(rt.value(attr)),
                );
            }
        }
        shown += 1;
        if shown >= 3 {
            break;
        }
    }
}
