//! Quickstart: compare the two incomplete Conference instances from the
//! paper's running example (Fig. 6) and inspect the resulting instance
//! match — the score, the tuple correspondences, and the value mappings
//! that explain them.
//!
//! Run with: `cargo run --release --example quickstart`

use instance_comparison::core::{
    exact_match, render_value_mapping, signature_match, ExactConfig, SignatureConfig,
};
use instance_comparison::model::{display, Catalog, Instance, Schema};

fn main() {
    // Conference(Id, Name, Year, Org).
    let mut cat = Catalog::new(Schema::single("Conference", &["Id", "Name", "Year", "Org"]));
    let rel = cat.schema().rel("Conference").unwrap();

    let vldb = cat.konst("VLDB");
    let sigmod = cat.konst("SIGMOD");
    let icde = cat.konst("ICDE");
    let (y75, y76, y77, y84) = (
        cat.konst("1975"),
        cat.konst("1976"),
        cat.konst("1977"),
        cat.konst("1984"),
    );
    let end = cat.konst("VLDB End.");
    let acm = cat.konst("ACM");
    let ieee = cat.konst("IEEE");
    let three = cat.konst("3");

    // Left instance I: surrogate ids are labeled nulls; one year unknown.
    let (n1, n2, n3, n4) = (
        cat.fresh_null(),
        cat.fresh_null(),
        cat.fresh_null(),
        cat.fresh_null(),
    );
    let mut left = Instance::new("I", &cat);
    left.insert(rel, vec![n1, vldb, y75, end]);
    left.insert(rel, vec![n2, vldb, n4, end]);
    left.insert(rel, vec![n3, sigmod, y77, acm]);

    // Right instance I': different nulls, one shared surrogate (Va), one
    // unknown organizer (Vb), and an unrelated ICDE tuple.
    let (va, vb) = (cat.fresh_null(), cat.fresh_null());
    let mut right = Instance::new("I'", &cat);
    right.insert(rel, vec![va, vldb, y75, end]);
    right.insert(rel, vec![va, vldb, y76, vb]);
    right.insert(rel, vec![three, icde, y84, ieee]);

    println!("{}", display::render_instance(&left, &cat));
    println!("{}", display::render_instance(&right, &cat));

    // The PTIME signature algorithm.
    let sig = signature_match(&left, &right, &cat, &SignatureConfig::default());
    println!("Signature similarity: {:.4}", sig.best.score());
    println!(
        "  ({} signature-based matches, {} from the exhaustive step)",
        sig.stats.sig_matches, sig.stats.exhaustive_matches
    );

    // The exact algorithm agrees on this small input.
    let exact = exact_match(&left, &right, &cat, &ExactConfig::default());
    println!(
        "Exact similarity:     {:.4}  (optimal: {}, {} search nodes)",
        exact.best.score(),
        exact.optimal,
        exact.nodes
    );

    // The match explains the score: which tuples correspond...
    println!("\nTuple mapping:");
    for p in &exact.best.pairs {
        println!("  t{}  ->  t{}", p.left.0, p.right.0);
    }
    println!(
        "Unmatched left: {:?}, unmatched right: {:?}",
        exact.best.details.unmatched_left, exact.best.details.unmatched_right
    );

    // ...and how the labeled nulls were interpreted.
    println!("\nLeft value mapping (h_l) on nulls:");
    print!("{}", render_value_mapping(&exact.best.left_mapping, &cat));
}
