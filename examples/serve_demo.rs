//! The serving layer end to end, in one process: start an `ic-serve`
//! server on an ephemeral port over two perturbed `ic-datagen` instances,
//! then talk to it over TCP with the blocking client — list the catalog,
//! run signature/exact/both comparisons (including a deliberately
//! impossible zero-budget request), and read the server's `stats`.
//!
//! Run with: `cargo run --release --example serve_demo`

use instance_comparison::datagen::{mod_cell, Dataset};
use instance_comparison::serve::{
    Algo, Client, CompareOptions, ServeCatalog, Server, ServerConfig,
};
use std::sync::Arc;

fn main() {
    // A modCell scenario: source/target start isomorphic, then 20% of the
    // cells are replaced with fresh nulls or new constants.
    let sc = mod_cell(Dataset::Doctors, 60, 0.20, 42);
    let catalog = Arc::new(ServeCatalog::from_catalog(sc.catalog));
    catalog.register("doctors_v1", sc.source).unwrap();
    catalog.register("doctors_v2", sc.target).unwrap();

    // "127.0.0.1:0" asks the OS for an ephemeral port; the handle reports
    // the resolved address. A real deployment runs the `serve` binary.
    let server = Server::start(catalog, "127.0.0.1:0", ServerConfig::default())
        .expect("bind an ephemeral loopback port");
    println!("serving on {}", server.local_addr());

    let mut client = Client::connect(server.local_addr())
        .deadline(std::time::Duration::from_secs(2))
        .build()
        .expect("connect");

    println!("\ncatalog:");
    for info in client.list().expect("list") {
        println!(
            "  {:<12} {:>5} tuples, {:>4} null cells",
            info.name, info.tuples, info.null_cells
        );
    }

    let sig = client
        .compare(
            "doctors_v1",
            "doctors_v2",
            Algo::Signature,
            CompareOptions::default(),
        )
        .expect("signature compare");
    println!(
        "\nsignature similarity: {:.6}  ({} matched pairs, {} µs server-side)",
        sig.signature.unwrap(),
        sig.pairs.unwrap(),
        sig.elapsed_us
    );

    let both = client
        .compare(
            "doctors_v1",
            "doctors_v2",
            Algo::Both,
            CompareOptions {
                lambda: Some(0.5),
                budget_ms: Some(30_000),
            },
        )
        .expect("exact+signature compare");
    println!(
        "exact similarity:     {:.6}  (optimal: {}, gap to signature: {:.6})",
        both.exact.unwrap(),
        both.optimal.unwrap(),
        both.exact.unwrap() - both.signature.unwrap()
    );

    // Deadlines are enforced: an impossible budget comes back as a typed
    // `budget` error instead of a hang or a silently partial score.
    let err = client
        .compare(
            "doctors_v1",
            "doctors_v2",
            Algo::Exact,
            CompareOptions {
                budget_ms: Some(0),
                ..CompareOptions::default()
            },
        )
        .expect_err("a zero budget cannot succeed");
    println!("\nzero-budget request rejected: {err}");

    let stats = client.stats().expect("stats");
    println!(
        "\nserver stats: {} requests, {} compares completed, {} errors",
        stats.requests, stats.completed, stats.errors
    );
    for span in &stats.spans {
        println!(
            "  span {:<16} {} reports, {} µs total",
            span.label, span.reports, span.wall_us
        );
    }

    client.shutdown().expect("shutdown");
    server.wait();
    println!("\nserver drained and stopped");
}
