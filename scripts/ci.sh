#!/usr/bin/env bash
# Tier-1 verification for the instance-comparison workspace.
#
# The build environment is fully offline: every dependency is an in-tree
# path crate (see "Offline dependency policy" in README.md), so --offline
# must always succeed. Run from anywhere; the script cd's to the repo root.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --offline"
cargo build --release --offline

echo "==> cargo test -q --offline"
cargo test -q --offline

if rustfmt --version >/dev/null 2>&1; then
    echo "==> cargo fmt --check"
    cargo fmt --check
else
    echo "==> rustfmt not installed; skipping format check"
fi

echo "==> ci.sh: all checks passed"
