#!/usr/bin/env bash
# Tier-1 verification for the instance-comparison workspace.
#
# The build environment is fully offline: every dependency is an in-tree
# path crate (see "Offline dependency policy" in README.md), so --offline
# must always succeed. Run from anywhere; the script cd's to the repo root.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --offline"
cargo build --release --offline

echo "==> cargo test -q --offline (default thread pool)"
cargo test -q --offline

# The parallel hot paths must be bit-identical in sequential mode; a second
# pass with the pool forced to one thread catches any divergence (and any
# code that only works when workers exist).
echo "==> cargo test -q --offline (IC_POOL_THREADS=1)"
IC_POOL_THREADS=1 cargo test -q --offline -p ic-core -p ic-pool

# The incremental delta re-scoring path must be bit-identical to
# from-scratch comparison under both pool configurations (the property
# suite also pins this internally at 1 and 4 comparator threads).
echo "==> incremental property suite (default thread pool)"
cargo test -q --offline --test incremental_props
echo "==> incremental property suite (IC_POOL_THREADS=1)"
IC_POOL_THREADS=1 cargo test -q --offline --test incremental_props

echo "==> bench_incremental (delta re-scoring speedup + >=5x repair saving)"
cargo run -q --offline --release -p ic-bench --bin bench_incremental
test -f target/ic-bench/BENCH_incremental.json
echo "    wrote target/ic-bench/BENCH_incremental.json"

echo "==> bench_parallel_scaling (thread-scaling smoke + determinism check)"
cargo run -q --offline --release -p ic-bench --bin bench_parallel_scaling
test -f target/ic-bench/BENCH_parallel.json
echo "    wrote target/ic-bench/BENCH_parallel.json"

# Observability must be optional: the core library has to build with the
# obs feature (and thus ic-obs itself) compiled out entirely.
echo "==> cargo build -p ic-core --offline --no-default-features (obs compiled out)"
cargo build -p ic-core --offline --no-default-features

# And close to free when compiled in: assert <2% wall-clock overhead on the
# signature workload even with a no-op sink installed, and leave a JSONL
# span-tree/metrics artifact from one fully observed run.
echo "==> bench_obs_overhead (no-op observability overhead + JSONL artifact)"
IC_OBS_JSONL=target/ic-bench/obs_report.jsonl \
    cargo run -q --offline --release -p ic-bench --bin bench_obs_overhead
test -s target/ic-bench/obs_report.jsonl
echo "    wrote target/ic-bench/obs_report.jsonl"

# The serving layer: unit + e2e/error-path/wire-property tests (exact-score
# parity with the direct Comparator, snapshot isolation under concurrent
# loads, graceful drain, typed errors, admission control, pipelining,
# backpressure disconnects, and the 10k-idle-connection smoke). The full
# suite runs under BOTH runtimes — thread-per-connection and the epoll
# event loop — so every e2e contract is pinned on each.
echo "==> cargo test -q --offline -p ic-serve (IC_SERVE_RUNTIME=threaded)"
IC_SERVE_RUNTIME=threaded cargo test -q --offline -p ic-serve
echo "==> cargo test -q --offline -p ic-serve (IC_SERVE_RUNTIME=event)"
IC_SERVE_RUNTIME=event cargo test -q --offline -p ic-serve

# Catalog durability (DESIGN.md §11): the ic-store format/WAL unit tests,
# then the recovery property suite — a WAL truncated at every byte
# boundary of its final record must recover the pre-crash catalog minus at
# most the torn op, with bit-identical compare scores — at 1 and 4
# comparator threads. The durability e2e in the same file also runs the
# serve binary twice over one --data-dir (load + wire patch + restart +
# bit-identical re-compare).
echo "==> cargo test -q --offline -p ic-store"
cargo test -q --offline -p ic-store
echo "==> durability property + restart e2e suite (IC_POOL_THREADS=1)"
IC_POOL_THREADS=1 cargo test -q --offline -p ic-serve --test durability
echo "==> durability property + restart e2e suite (IC_POOL_THREADS=4)"
IC_POOL_THREADS=4 cargo test -q --offline -p ic-serve --test durability

# Cold-start cost of durability: restoring the 1000-instance lake from the
# snapshot vs re-parsing its CSVs; the >=5x assertion arms when cores > 1.
echo "==> bench_durability (snapshot vs CSV cold-start)"
cargo run -q --offline --release -p ic-bench --bin bench_durability
test -f target/ic-bench/BENCH_durability.json
echo "    wrote target/ic-bench/BENCH_durability.json"

# The serving layer's end-to-end cost: loopback request throughput at
# 1/8/64/512 concurrent connections, sequential and pipelined (depth 8),
# under both runtimes, recorded as a JSON artifact. Its cross-runtime
# sanity assertion arms only when cores > 1.
echo "==> bench_serve_throughput (serving-layer loopback req/s)"
cargo run -q --offline --release -p ic-bench --bin bench_serve_throughput
test -f target/ic-bench/BENCH_serve.json
echo "    wrote target/ic-bench/BENCH_serve.json"

# Constraint discovery (DESIGN.md §12): possible-world g3 intervals,
# classical-g3 collapse on null-free data, bit-identical lattice output
# at both pool thread counts, and the prior contract (discovered keys
# never move a similarity score).
echo "==> discovery property suite (default thread pool)"
cargo test -q --offline --test discovery_props
echo "==> discovery property suite (IC_POOL_THREADS=1)"
IC_POOL_THREADS=1 cargo test -q --offline --test discovery_props

# Discovery's acceptance bench: recall 1.0 of the planted constraints at
# the planted epsilon (asserted inside), precision/recall across an
# epsilon grid, and lattice rows/s as a JSON artifact.
echo "==> bench_discovery (planted-constraint recall + epsilon grid + rows/s)"
cargo run -q --offline --release -p ic-bench --bin bench_discovery
test -f target/ic-bench/BENCH_discovery.json
echo "    wrote target/ic-bench/BENCH_discovery.json"

# The search path must stay exact: topk over the whole catalog reproduces
# the brute-force ranking bit-for-bit at 1 and 4 comparator threads.
echo "==> search property suite (topk == brute force, threads 1 and 4)"
cargo test -q --offline --test search_props

# The index's point: recall@10 of 1.0 on a 10k-instance lake while fully
# comparing <20% of the catalog, with query throughput as a JSON artifact.
echo "==> bench_search (recall@k vs brute force + prefilter rate + queries/s)"
cargo run -q --offline --release -p ic-bench --bin bench_search
test -f target/ic-bench/BENCH_search.json
echo "    wrote target/ic-bench/BENCH_search.json"

# Public docs must build clean across the workspace (broken intra-doc links
# and malformed doc comments are errors, not warnings).
echo "==> cargo doc --workspace --no-deps --offline (warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc -q --workspace --no-deps --offline

if rustfmt --version >/dev/null 2>&1; then
    echo "==> cargo fmt --check"
    cargo fmt --check
else
    echo "==> rustfmt not installed; skipping format check"
fi

echo "==> ci.sh: all checks passed"
