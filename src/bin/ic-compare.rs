//! `ic-compare` — compare two CSV files as incomplete database instances.
//!
//! ```text
//! ic-compare <left.csv> <right.csv> [options]
//!
//! options:
//!   --mode one-to-one|left-functional|general   tuple-mapping restriction
//!   --lambda <0..1>                             null-vs-constant credit (default 0.5)
//!   --exact                                     also run the exact algorithm
//!   --budget <seconds>                          exact-search budget (default 10)
//!   --partial                                   allow partial tuple matches
//!   --explain                                   print the difference report
//!   --null-prefix <str>                         labeled-null marker (default "_N:")
//!   --empty-is-constant                         treat empty cells as "" instead of nulls
//!   --mapping <out.csv>                         write the tuple mapping as CSV
//! ```
//!
//! Files with different headers are aligned by attribute name; missing
//! columns are padded with fresh labeled nulls (paper Sec. 4.3).

use instance_comparison::core::{
    exact_match, explain, render_diff, signature_match, ExactConfig, MatchMode, ScoreConfig,
    SignatureConfig,
};
use instance_comparison::model::align::align_instances;
use instance_comparison::model::csv::{read_csv, CsvOptions};
use std::process::ExitCode;
use std::time::Duration;

struct Args {
    left: String,
    right: String,
    mode: MatchMode,
    lambda: f64,
    exact: bool,
    budget: f64,
    partial: bool,
    explain: bool,
    mapping_out: Option<String>,
    csv: CsvOptions,
}

fn usage() -> ! {
    eprintln!(
        "usage: ic-compare <left.csv> <right.csv> [--mode one-to-one|left-functional|general]\n\
         \x20                [--lambda <0..1>] [--exact] [--budget <seconds>] [--partial]\n\
         \x20                [--explain] [--null-prefix <str>] [--empty-is-constant]"
    );
    std::process::exit(2)
}

fn parse_args() -> Args {
    let mut args = Args {
        left: String::new(),
        right: String::new(),
        mode: MatchMode::one_to_one(),
        lambda: 0.5,
        exact: false,
        budget: 10.0,
        partial: false,
        explain: false,
        mapping_out: None,
        csv: CsvOptions::default(),
    };
    let mut positional = Vec::new();
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--mode" => {
                args.mode = match it.next().as_deref() {
                    Some("one-to-one") => MatchMode::one_to_one(),
                    Some("left-functional") => MatchMode::left_functional(),
                    Some("general") => MatchMode::general(),
                    _ => usage(),
                }
            }
            "--lambda" => {
                args.lambda = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|l| (0.0..1.0).contains(l))
                    .unwrap_or_else(|| usage())
            }
            "--exact" => args.exact = true,
            "--budget" => {
                args.budget = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--partial" => args.partial = true,
            "--explain" => args.explain = true,
            "--mapping" => args.mapping_out = Some(it.next().unwrap_or_else(|| usage())),
            "--null-prefix" => args.csv.null_prefix = it.next().unwrap_or_else(|| usage()),
            "--empty-is-constant" => args.csv.empty_is_fresh_null = false,
            "-h" | "--help" => usage(),
            other if !other.starts_with('-') => positional.push(other.to_string()),
            _ => usage(),
        }
    }
    if positional.len() != 2 {
        usage();
    }
    args.left = positional.remove(0);
    args.right = positional.remove(0);
    args
}

fn main() -> ExitCode {
    let args = parse_args();
    let left_text = match std::fs::read_to_string(&args.left) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {}: {e}", args.left);
            return ExitCode::FAILURE;
        }
    };
    let right_text = match std::fs::read_to_string(&args.right) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {}: {e}", args.right);
            return ExitCode::FAILURE;
        }
    };

    let (left_cat, left_inst) = match read_csv(&left_text, "T", "left", &args.csv) {
        Ok(x) => x,
        Err(e) => {
            eprintln!("error parsing {}: {e}", args.left);
            return ExitCode::FAILURE;
        }
    };
    let (right_cat, right_inst) = match read_csv(&right_text, "T", "right", &args.csv) {
        Ok(x) => x,
        Err(e) => {
            eprintln!("error parsing {}: {e}", args.right);
            return ExitCode::FAILURE;
        }
    };

    // Align by attribute name (pads missing columns with fresh nulls).
    let aligned = align_instances(&left_cat, &left_inst, &right_cat, &right_inst);
    let (catalog, left, right) = (aligned.catalog, aligned.left, aligned.right);
    println!(
        "left:  {} tuples ({} null cells)",
        left.num_tuples(),
        left.num_null_cells()
    );
    println!(
        "right: {} tuples ({} null cells)",
        right.num_tuples(),
        right.num_null_cells()
    );

    let score_cfg = ScoreConfig {
        lambda: args.lambda,
        string_sim_weight: None,
    };
    let sig_cfg = SignatureConfig {
        mode: args.mode,
        score: score_cfg,
        partial: args.partial,
        ..Default::default()
    };
    let sig = signature_match(&left, &right, &catalog, &sig_cfg);
    println!(
        "signature similarity: {:.4}   ({} matched pairs, {:.3}s)",
        sig.best.score(),
        sig.best.pairs.len(),
        sig.elapsed.as_secs_f64()
    );

    if args.exact {
        let cfg = ExactConfig {
            mode: args.mode,
            score: score_cfg,
            budget: Some(Duration::from_secs_f64(args.budget)),
            ..Default::default()
        };
        let out = exact_match(&left, &right, &catalog, &cfg);
        println!(
            "exact similarity:     {:.4}   (optimal: {}, {} nodes, {:.3}s)",
            out.best.score(),
            out.optimal,
            out.nodes,
            out.elapsed.as_secs_f64()
        );
    }

    if args.explain {
        let diff = explain(&sig.best, &left, &right);
        println!("\n{}", render_diff(&diff, &catalog, &left, &right));
    }

    if let Some(path) = &args.mapping_out {
        // One row per matched pair: left row number, right row number
        // (1-based, in file order), plus the pair's full cell contents.
        let rel = catalog.schema().rel_ids().next().expect("one relation");
        let pos_of = |inst: &instance_comparison::model::Instance| {
            inst.tuples(rel)
                .iter()
                .enumerate()
                .map(|(i, t)| (t.id(), i + 1))
                .collect::<std::collections::HashMap<_, _>>()
        };
        let lpos = pos_of(&left);
        let rpos = pos_of(&right);
        let mut out = String::from("left_row,right_row,left_tuple,right_tuple\n");
        let render = |inst: &instance_comparison::model::Instance,
                      id: instance_comparison::model::TupleId| {
            inst.tuple(id)
                .map(|t| {
                    t.values()
                        .iter()
                        .map(|&v| catalog.render(v))
                        .collect::<Vec<_>>()
                        .join("|")
                })
                .unwrap_or_default()
        };
        for p in &sig.best.pairs {
            out.push_str(&format!(
                "{},{},\"{}\",\"{}\"\n",
                lpos.get(&p.left).copied().unwrap_or(0),
                rpos.get(&p.right).copied().unwrap_or(0),
                render(&left, p.left).replace('"', "\"\""),
                render(&right, p.right).replace('"', "\"\"")
            ));
        }
        if let Err(e) = std::fs::write(path, out) {
            eprintln!("error writing {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("mapping written to {path}");
    }
    ExitCode::SUCCESS
}
