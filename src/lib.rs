//! # instance-comparison
//!
//! A Rust implementation of **similarity measures for incomplete database
//! instances** — the EDBT 2024 paper by Glavic, Mecca, Miller, Papotti,
//! Santoro and Veltri — together with the substrates its evaluation depends
//! on (data-exchange chase and cores, constraint repair, data versioning).
//!
//! Incomplete instances use *labeled nulls*: placeholders whose identity
//! matters (the same null in two cells means "the same unknown value") but
//! whose name does not. Comparing two such instances means finding an
//! *instance match*: value mappings for both sides plus a tuple mapping
//! whose matched tuples agree under the mappings. The similarity is the
//! best score any match achieves — 1 exactly for isomorphic instances, 0
//! for ground instances sharing nothing.
//!
//! ## Crate map
//!
//! | Module | Contents |
//! |---|---|
//! | [`model`] | schemas, instances, labeled nulls, CSV I/O |
//! | [`core`] | scoring, exact and signature algorithms, homomorphisms |
//! | [`datagen`] | synthetic datasets and perturbation scenarios |
//! | [`exchange`] | s-t tgds, chase, core solutions |
//! | [`cleaning`] | FDs, error injection, repair systems, F1 metrics |
//! | [`versioning`] | version ops, diff baseline, comparison stats |
//! | [`discovery`] | approximate keys/FDs under possible-world g3, match priors |
//! | [`index`] | top-k similarity search: sketches, sharded inverted index |
//! | [`obs`] | spans, metrics, observation sinks (span trees, JSONL) |
//! | [`serve`] | similarity service: instance catalog, wire protocol, server, client |
//!
//! ## Quickstart
//!
//! ```
//! use instance_comparison::model::{Catalog, Instance, Schema};
//! use instance_comparison::core::Comparator;
//!
//! // Conference(Name, Year, Org) — two versions of the same data, one with
//! // a missing year encoded as a labeled null.
//! let mut cat = Catalog::new(Schema::single("Conference", &["Name", "Year", "Org"]));
//! let rel = cat.schema().rel("Conference").unwrap();
//! let (vldb, y75, end) = (cat.konst("VLDB"), cat.konst("1975"), cat.konst("VLDB End."));
//! let null_year = cat.fresh_null();
//!
//! let mut v1 = Instance::new("v1", &cat);
//! v1.insert(rel, vec![vldb, y75, end]);
//! let mut v2 = Instance::new("v2", &cat);
//! v2.insert(rel, vec![vldb, null_year, end]);
//!
//! let cmp = Comparator::new(&cat).build().unwrap();
//! let out = cmp.signature(&v1, &v2).unwrap();
//! assert_eq!(out.best.pairs.len(), 1);           // the tuples correspond
//! assert!(out.best.score() > 0.7 && out.best.score() < 1.0);
//! ```

#![warn(missing_docs)]

/// One-import convenience: the types and functions most programs need.
///
/// ```
/// use instance_comparison::prelude::*;
///
/// let mut cat = Catalog::new(Schema::single("R", &["A"]));
/// let rel = cat.schema().rel("R").unwrap();
/// let v = cat.konst("v");
/// let mut left = Instance::new("I", &cat);
/// left.insert(rel, vec![v]);
/// let right = left.clone();
/// let out = signature_match(&left, &right, &cat, &SignatureConfig::default());
/// assert_eq!(out.best.score(), 1.0);
/// ```
pub mod prelude {
    pub use ic_core::{
        compare, exact_match, explain, is_homomorphic, isomorphic, render_diff, signature_match,
        Comparator, Error, ExactConfig, InstanceMatch, MatchMode, ScoreConfig, SignatureConfig,
    };
    pub use ic_model::{Catalog, Instance, RelId, Schema, TupleId, Value};
}

pub use ic_cleaning as cleaning;
pub use ic_core as core;
pub use ic_datagen as datagen;
pub use ic_discovery as discovery;
pub use ic_exchange as exchange;
pub use ic_index as index;
pub use ic_model as model;
pub use ic_obs as obs;
pub use ic_pool as pool;
pub use ic_serve as serve;
pub use ic_versioning as versioning;
