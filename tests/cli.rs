//! Integration tests of the `ic-compare` command-line tool.

use std::io::Write as _;
use std::process::Command;

fn write_temp(name: &str, contents: &str) -> std::path::PathBuf {
    let mut path = std::env::temp_dir();
    path.push(format!("ic_compare_test_{}_{}", std::process::id(), name));
    let mut f = std::fs::File::create(&path).expect("create temp file");
    f.write_all(contents.as_bytes()).expect("write temp file");
    path
}

fn run(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_ic-compare"))
        .args(args)
        .output()
        .expect("spawn ic-compare");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn compares_identical_files() {
    let left = write_temp("id_l.csv", "A,B\nx,y\nz,w\n");
    let right = write_temp("id_r.csv", "A,B\nz,w\nx,y\n");
    let (stdout, _stderr, ok) = run(&[left.to_str().unwrap(), right.to_str().unwrap()]);
    assert!(ok);
    assert!(
        stdout.contains("signature similarity: 1.0000"),
        "stdout: {stdout}"
    );
    let _ = std::fs::remove_file(left);
    let _ = std::fs::remove_file(right);
}

#[test]
fn aligns_different_headers_and_explains() {
    let left = write_temp("al_l.csv", "A,B\nx,y\n");
    let right = write_temp("al_r.csv", "A\nx\n");
    let (stdout, _stderr, ok) = run(&[
        left.to_str().unwrap(),
        right.to_str().unwrap(),
        "--explain",
        "--exact",
    ]);
    assert!(ok);
    assert!(stdout.contains("signature similarity"));
    assert!(stdout.contains("exact similarity"));
    assert!(stdout.contains("updated") || stdout.contains("unchanged"));
    let _ = std::fs::remove_file(left);
    let _ = std::fs::remove_file(right);
}

#[test]
fn nulls_in_csv_are_respected() {
    let left = write_temp("nu_l.csv", "A,B\nx,1\n");
    let right = write_temp("nu_r.csv", "A,B\nx,\n");
    let (stdout, _stderr, ok) = run(&[left.to_str().unwrap(), right.to_str().unwrap()]);
    assert!(ok);
    // One cell becomes λ-credit: score strictly between 0.5 and 1.
    let score: f64 = stdout
        .lines()
        .find(|l| l.contains("signature similarity"))
        .and_then(|l| l.split_whitespace().nth(2))
        .and_then(|s| s.parse().ok())
        .expect("score line");
    assert!(score > 0.5 && score < 1.0, "score {score}");
    let _ = std::fs::remove_file(left);
    let _ = std::fs::remove_file(right);
}

#[test]
fn mode_and_lambda_flags_are_honored() {
    let left = write_temp(
        "fl_l.csv", "A
x
x
",
    );
    let right = write_temp(
        "fl_r.csv", "A
x
",
    );
    // general mode matches both left tuples to the single right tuple.
    let (stdout, _stderr, ok) = run(&[
        left.to_str().unwrap(),
        right.to_str().unwrap(),
        "--mode",
        "general",
    ]);
    assert!(ok);
    assert!(stdout.contains("2 matched pairs"), "stdout: {stdout}");
    // λ = 0 gives no credit for null-vs-constant cells.
    let left2 = write_temp(
        "fl_l2.csv",
        "A,B
x,1
",
    );
    let right2 = write_temp(
        "fl_r2.csv",
        "A,B
x,
",
    );
    let (s0, _, ok0) = run(&[
        left2.to_str().unwrap(),
        right2.to_str().unwrap(),
        "--lambda",
        "0.0",
    ]);
    assert!(ok0);
    assert!(s0.contains("signature similarity: 0.5000"), "stdout: {s0}");
    for f in [left, right, left2, right2] {
        let _ = std::fs::remove_file(f);
    }
}

#[test]
fn mapping_output_file_is_written() {
    let left = write_temp("mp_l.csv", "A,B\nx,y\nz,w\n");
    let right = write_temp("mp_r.csv", "A,B\nz,w\nx,y\n");
    let mut map_path = std::env::temp_dir();
    map_path.push(format!("ic_compare_map_{}.csv", std::process::id()));
    let (stdout, _stderr, ok) = run(&[
        left.to_str().unwrap(),
        right.to_str().unwrap(),
        "--mapping",
        map_path.to_str().unwrap(),
    ]);
    assert!(ok);
    assert!(stdout.contains("mapping written"));
    let contents = std::fs::read_to_string(&map_path).unwrap();
    assert!(contents.starts_with("left_row,right_row"));
    assert_eq!(contents.lines().count(), 3); // header + 2 pairs
    for f in [left, right, map_path] {
        let _ = std::fs::remove_file(f);
    }
}

#[test]
fn missing_file_fails_gracefully() {
    let (_stdout, stderr, ok) = run(&["/nonexistent/left.csv", "/nonexistent/right.csv"]);
    assert!(!ok);
    assert!(stderr.contains("cannot read"));
}

#[test]
fn bad_flag_shows_usage() {
    let (_stdout, stderr, ok) = run(&["--bogus"]);
    assert!(!ok);
    assert!(stderr.contains("usage:"));
}
