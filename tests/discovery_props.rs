//! Property tests of `ic-discovery` ([`fd_g3`]/[`key_g3`] and the lattice
//! search): for random small instances with labeled nulls, the
//! possible-world violation interval must be ordered and bounded; on
//! null-free data the interval collapses to the classical g3, which is 0
//! exactly when the FD holds; discovery output is bit-identical at any
//! pool thread count; and feeding discovered keys back as match priors
//! never changes a similarity score. Runs on `ic-testkit`: seeded,
//! reproducible via `IC_TESTKIT_SEED`, shrinking on failure.

use ic_testkit::{Gen, Runner};
use instance_comparison::core::Comparator;
use instance_comparison::discovery::{discover, fd_g3, key_g3, priors_from_keys, DiscoveryConfig};
use instance_comparison::model::{AttrId, Catalog, Instance, RelId, Schema, Value};
use rand::RngExt;

const REL: RelId = RelId(0);
const ARITY: usize = 3;

/// Descriptor of a random cell: a constant from a small pool (so FDs hold
/// or nearly hold by accident often enough to be interesting) or a fresh
/// labeled null.
#[derive(Debug, Clone, Copy)]
enum Cell {
    Const(u8),
    Null,
}

type Case = Vec<[Cell; ARITY]>;

fn gen_cell(g: &mut Gen, null_ok: bool) -> Cell {
    if null_ok && g.rng().random_bool(0.2) {
        Cell::Null
    } else {
        Cell::Const(g.rng().random_range(0..4u8))
    }
}

fn gen_case_with_nulls(g: &mut Gen) -> Case {
    g.vec_of(10, |g| std::array::from_fn(|_| gen_cell(g, true)))
}

fn gen_case_null_free(g: &mut Gen) -> Case {
    g.vec_of(10, |g| std::array::from_fn(|_| gen_cell(g, false)))
}

fn materialize(case: &Case) -> (Catalog, Instance) {
    let mut cat = Catalog::new(Schema::single("R", &["A", "B", "C"]));
    let mut inst = Instance::new("I", &cat);
    for row in case {
        let vals: Vec<Value> = row
            .iter()
            .map(|&c| match c {
                Cell::Const(k) => cat.konst(&format!("c{k}")),
                Cell::Null => cat.fresh_null(),
            })
            .collect();
        inst.insert(REL, vals);
    }
    (cat, inst)
}

/// Every candidate FD/key over the schema, up to the full attribute set.
fn all_fd_candidates() -> Vec<(Vec<AttrId>, AttrId)> {
    let mut out = Vec::new();
    for mask in 1u32..(1 << ARITY) {
        let lhs: Vec<AttrId> = (0..ARITY as u16)
            .filter(|a| mask & (1 << a) != 0)
            .map(AttrId)
            .collect();
        for rhs in 0..ARITY as u16 {
            if mask & (1 << rhs) == 0 {
                out.push((lhs.clone(), AttrId(rhs)));
            }
        }
    }
    out
}

#[test]
fn g3_interval_is_ordered_and_bounded() {
    Runner::new("discovery::g3_interval_ordered")
        .cases(64)
        .run(gen_case_with_nulls, |case| {
            let (cat, inst) = materialize(case);
            for (lhs, rhs) in all_fd_candidates() {
                let g = fd_g3(&inst, &cat, REL, &lhs, rhs);
                assert!(
                    g.g3_min <= g.g3_max,
                    "interval inverted for {lhs:?} -> {rhs:?}: {g:?}"
                );
                assert!((0.0..1.0).contains(&g.g3_min), "{g:?} out of range");
                assert!((0.0..1.0).contains(&g.g3_max), "{g:?} out of range");
            }
            for mask in 1u32..(1 << ARITY) {
                let attrs: Vec<AttrId> = (0..ARITY as u16)
                    .filter(|a| mask & (1 << a) != 0)
                    .map(AttrId)
                    .collect();
                let g = key_g3(&inst, &cat, REL, &attrs);
                assert!(g.g3_min <= g.g3_max, "key interval inverted: {g:?}");
                assert!((0.0..1.0).contains(&g.g3_max), "{g:?} out of range");
            }
        });
}

/// Classical g3 removal count, computed independently of ic-discovery.
fn exact_removals(case: &Case, lhs: &[AttrId], rhs: AttrId) -> usize {
    let mut groups: std::collections::HashMap<Vec<u8>, std::collections::HashMap<u8, usize>> =
        std::collections::HashMap::new();
    for row in case {
        let key: Vec<u8> = lhs
            .iter()
            .map(|a| match row[a.0 as usize] {
                Cell::Const(k) => k,
                Cell::Null => unreachable!("null-free generator"),
            })
            .collect();
        let dep = match row[rhs.0 as usize] {
            Cell::Const(k) => k,
            Cell::Null => unreachable!("null-free generator"),
        };
        *groups.entry(key).or_default().entry(dep).or_insert(0) += 1;
    }
    groups
        .values()
        .map(|counts| {
            let total: usize = counts.values().sum();
            total - counts.values().max().copied().unwrap_or(0)
        })
        .sum()
}

#[test]
fn null_free_interval_collapses_to_classical_g3() {
    Runner::new("discovery::null_free_is_classical_g3")
        .cases(64)
        .run(gen_case_null_free, |case| {
            let (cat, inst) = materialize(case);
            let n = case.len();
            for (lhs, rhs) in all_fd_candidates() {
                let g = fd_g3(&inst, &cat, REL, &lhs, rhs);
                // An empty relation violates nothing (the library defines
                // g3 = 0 there; the naive ratio would be 0/0).
                let removed = exact_removals(case, &lhs, rhs);
                let expected = if n == 0 {
                    0.0
                } else {
                    removed as f64 / n as f64
                };
                assert_eq!(
                    g.g3_min, g.g3_max,
                    "null-free interval must collapse for {lhs:?} -> {rhs:?}"
                );
                assert_eq!(
                    g.g3_min, expected,
                    "classical g3 mismatch for {lhs:?} -> {rhs:?}"
                );
                // g3 == 0 exactly when the FD holds on the data.
                assert_eq!(g.g3_max == 0.0, removed == 0);
            }
        });
}

#[test]
fn discovery_is_bit_identical_across_pool_thread_counts() {
    Runner::new("discovery::thread_invariance")
        .cases(24)
        .run(gen_case_with_nulls, |case| {
            let (cat, inst) = materialize(case);
            let cfg = DiscoveryConfig {
                epsilon: 0.3,
                ..DiscoveryConfig::default()
            };
            let one =
                instance_comparison::pool::with_threads(1, || discover(&inst, &cat, &cfg).unwrap());
            let four =
                instance_comparison::pool::with_threads(4, || discover(&inst, &cat, &cfg).unwrap());
            assert_eq!(one.fds, four.fds, "FD output depends on thread count");
            assert_eq!(one.keys, four.keys, "key output depends on thread count");
            for (a, b) in one.fds.iter().zip(&four.fds) {
                assert_eq!(a.g3.g3_min.to_bits(), b.g3.g3_min.to_bits());
                assert_eq!(a.g3.g3_max.to_bits(), b.g3.g3_max.to_bits());
            }
        });
}

#[test]
fn discovered_priors_never_change_similarity_scores() {
    Runner::new("discovery::priors_score_invariance")
        .cases(24)
        .run(
            |g| (gen_case_with_nulls(g), gen_case_with_nulls(g)),
            |(left_case, right_case)| {
                let mut cat = Catalog::new(Schema::single("R", &["A", "B", "C"]));
                let build = |cat: &mut Catalog, name: &str, case: &Case| {
                    let mut inst = Instance::new(name, &*cat);
                    for row in case {
                        let vals: Vec<Value> = row
                            .iter()
                            .map(|&c| match c {
                                Cell::Const(k) => cat.konst(&format!("c{k}")),
                                Cell::Null => cat.fresh_null(),
                            })
                            .collect();
                        inst.insert(REL, vals);
                    }
                    inst
                };
                let left = build(&mut cat, "L", left_case);
                let right = build(&mut cat, "R", right_case);

                let cfg = DiscoveryConfig {
                    epsilon: 0.3,
                    ..DiscoveryConfig::default()
                };
                let found = discover(&left, &cat, &cfg).unwrap();
                let priors = priors_from_keys(&found.keys);

                let plain = Comparator::new(&cat).build().unwrap();
                let primed = Comparator::new(&cat).match_priors(priors).build().unwrap();
                let a = plain.signature(&left, &right).unwrap();
                let b = primed.signature(&left, &right).unwrap();
                assert_eq!(
                    a.best.score().to_bits(),
                    b.best.score().to_bits(),
                    "priors must never change the score"
                );
                assert_eq!(a.best.pairs.len(), b.best.pairs.len());
            },
        );
}
