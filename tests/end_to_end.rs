//! End-to-end integration tests spanning the crates: CSV import →
//! comparison; chase → core → similarity; repair → similarity; versioning →
//! similarity.

use instance_comparison::cleaning::{
    bus_cleaning_dataset, inject_errors, instance_f1, repair_f1, RepairSystem,
};
use instance_comparison::core::{
    exact_match, is_homomorphic, signature_match, symmetric_difference_similarity, ExactConfig,
    MatchMode, SignatureConfig,
};
use instance_comparison::datagen::{mod_cell, Dataset};
use instance_comparison::exchange::{core_of, doctors_scenario};
use instance_comparison::model::csv::{read_csv_into, write_csv, CsvOptions};
use instance_comparison::model::{Catalog, Instance, Schema};
use instance_comparison::versioning::{compare_versions, Variant, Version};

const EPS: f64 = 1e-9;

#[test]
fn csv_import_compare_export() {
    // Two CSV files with labeled nulls and SQL-style empty cells, imported
    // into one catalog, compared, and re-exported.
    let mut cat = Catalog::new(Schema::single("Conf", &["Name", "Year", "Org"]));
    let rel = cat.schema().rel("Conf").unwrap();
    let opts = CsvOptions::default();

    let left_text = "Name,Year,Org\nVLDB,1975,VLDB End.\nVLDB,1976,\nSIGMOD,1975,ACM\n";
    let right_text = "Name,Year,Org\nSIGMOD,1975,ACM\nVLDB,_N:y,VLDB End.\n,1976,IEEE\n";
    let mut left = Instance::new("I", &cat);
    read_csv_into(left_text, &mut cat, &mut left, rel, &opts).unwrap();
    let mut right = Instance::new("I1", &cat);
    read_csv_into(right_text, &mut cat, &mut right, rel, &opts).unwrap();

    assert_eq!(left.num_tuples(), 3);
    assert_eq!(right.num_tuples(), 3);
    assert!(!left.is_ground() && !right.is_ground());

    let out = signature_match(&left, &right, &cat, &SignatureConfig::default());
    // SIGMOD row matches exactly; VLDB rows pair through the nulls.
    assert!(out.best.pairs.len() >= 2);
    assert!(out.best.score() > 0.5 && out.best.score() < 1.0);

    // The measure sees more than the symmetric difference does.
    let sym = symmetric_difference_similarity(&left, &right);
    assert!(out.best.score() > sym);

    // Export round-trips.
    let exported = write_csv(&left, &cat, rel, &opts);
    assert!(exported.starts_with("Name,Year,Org\n"));
    assert!(exported.contains("VLDB,1975,VLDB End."));
}

#[test]
fn exchange_pipeline_chase_core_similarity() {
    let sc = doctors_scenario(120, 0.25, 77);
    // The core is reachable from the naive solution by folding.
    let folded = core_of(&sc.user2, &sc.catalog);
    assert_eq!(folded.num_tuples(), sc.gold.num_tuples());
    assert!(is_homomorphic(&folded, &sc.gold) && is_homomorphic(&sc.gold, &folded));

    // Similarity orders the solutions as the paper's Table 6 does.
    let cfg = SignatureConfig {
        mode: MatchMode::left_functional(),
        ..Default::default()
    };
    let s_w = signature_match(&sc.wrong, &sc.gold, &sc.catalog, &cfg)
        .best
        .score();
    let s_u1 = signature_match(&sc.user1, &sc.gold, &sc.catalog, &cfg)
        .best
        .score();
    let s_u2 = signature_match(&sc.user2, &sc.gold, &sc.catalog, &cfg)
        .best
        .score();
    assert!(s_w < 0.1);
    assert!(s_u1 > 0.5);
    assert!(s_u2 > s_u1);
}

#[test]
fn cleaning_pipeline_repair_similarity() {
    let (mut cat, clean, fds) = bus_cleaning_dataset(800, 123);
    let dirty = inject_errors(&clean, &fds, &mut cat, 0.05, 123);
    let sig_cfg = SignatureConfig::default();

    let mut sig_scores = Vec::new();
    for (name, sys) in RepairSystem::all() {
        let mut c = cat.clone();
        let repaired = sys.repair(&dirty.instance, &fds, &mut c, 123);
        let f1 = repair_f1(&clean, &dirty.instance, &repaired, &dirty.errors);
        let f1i = instance_f1(&clean, &repaired);
        let sig = signature_match(&repaired, &clean, &c, &sig_cfg)
            .best
            .score();
        assert!(f1.f1 <= 1.0 && f1i.f1 <= 1.0);
        sig_scores.push((name, f1.f1, sig));
    }
    // Majority-based repairs beat not repairing, by the similarity
    // measure; Sampling may rewrite whole groups wrongly and fall below the
    // unrepaired score (it still produces a *consistent* instance).
    let unrepaired = signature_match(&dirty.instance, &clean, &cat, &sig_cfg)
        .best
        .score();
    for (name, _, sig) in &sig_scores {
        if *name == "Sampling" {
            assert!(*sig > 0.6, "{name}: similarity collapsed to {sig}");
        } else {
            assert!(
                *sig >= unrepaired - 0.02,
                "{name}: repaired {sig} << unrepaired {unrepaired}"
            );
        }
    }
}

#[test]
fn versioning_pipeline_all_variants() {
    let (mut cat, inst) = Dataset::Iris.generate(120, 55);
    let rel = cat.schema().rel("Iris").unwrap();
    let orig = Version::plain(inst);
    for (variant, label) in Variant::ALL {
        let v = variant.apply(&orig.instance, &mut cat, rel, 0.175, 1, 55);
        let c = compare_versions(&orig, &v, &cat, rel);
        assert_eq!(
            c.signature.matches, c.modified_tuples,
            "{label}: every surviving tuple must match"
        );
        assert!(c.signature_score > 0.7, "{label}: {}", c.signature_score);
    }
}

#[test]
fn scenario_pipeline_exact_agrees_with_signature() {
    let sc = mod_cell(Dataset::Iris, 50, 0.05, 321);
    let e = exact_match(
        &sc.source,
        &sc.target,
        &sc.catalog,
        &ExactConfig {
            budget: Some(std::time::Duration::from_secs(20)),
            ..Default::default()
        },
    );
    let s = signature_match(
        &sc.source,
        &sc.target,
        &sc.catalog,
        &SignatureConfig::default(),
    );
    assert!(e.best.score() + EPS >= s.best.score());
    assert!(e.best.score() - s.best.score() < 0.01);
}

#[test]
fn multi_relation_end_to_end() {
    // Fig. 3/4 of the paper: Conference + Paper with surrogate-key nulls
    // spanning relations.
    let mut schema = Schema::new();
    schema.add_relation(instance_comparison::model::RelationSchema::new(
        "Conference",
        &["Id", "Name", "Year", "Place", "Org"],
    ));
    schema.add_relation(instance_comparison::model::RelationSchema::new(
        "Paper",
        &["Authors", "Title", "ConfId"],
    ));
    let mut cat = Catalog::new(schema);
    let conf = cat.schema().rel("Conference").unwrap();
    let paper = cat.schema().rel("Paper").unwrap();

    // Ground instance I_g.
    let (one, two, three) = (cat.konst("1"), cat.konst("2"), cat.konst("3"));
    let vldb = cat.konst("VLDB");
    let sigmod = cat.konst("SIGMOD");
    let (y75, y76) = (cat.konst("1975"), cat.konst("1976"));
    let (fra, bru, sj) = (
        cat.konst("Framingham"),
        cat.konst("Brussels"),
        cat.konst("San Jose"),
    );
    let (end, acm) = (cat.konst("VLDB End."), cat.konst("ACM"));
    let (zloof, chen, rapp) = (
        cat.konst("Zloof"),
        cat.konst("Chen"),
        cat.konst("Rappaport"),
    );
    let (qbe, er, fsd) = (cat.konst("QBE"), cat.konst("ER"), cat.konst("FSD"));

    let mut ground = Instance::new("Ig", &cat);
    ground.insert(conf, vec![one, vldb, y75, fra, end]);
    ground.insert(conf, vec![two, vldb, y76, bru, end]);
    ground.insert(conf, vec![three, sigmod, y75, sj, acm]);
    ground.insert(paper, vec![zloof, qbe, one]);
    ground.insert(paper, vec![chen, er, one]);
    ground.insert(paper, vec![rapp, fsd, three]);

    // Exchange-style instance I_n: surrogate keys are labeled nulls.
    let (k1, k2, place) = (cat.fresh_null(), cat.fresh_null(), cat.fresh_null());
    let mut exchanged = Instance::new("In", &cat);
    exchanged.insert(conf, vec![k1, vldb, y75, place, end]);
    exchanged.insert(conf, vec![k2, vldb, y76, bru, end]);
    exchanged.insert(conf, vec![three, sigmod, y75, sj, acm]);
    exchanged.insert(paper, vec![zloof, qbe, k1]);
    exchanged.insert(paper, vec![chen, er, k1]);
    exchanged.insert(paper, vec![rapp, fsd, three]);

    // The exchanged instance is homomorphic to the ground one (k1→1 etc.).
    assert!(is_homomorphic(&exchanged, &ground));

    // And highly similar, with all six tuples matched consistently.
    let out = signature_match(&exchanged, &ground, &cat, &SignatureConfig::default());
    assert_eq!(out.best.pairs.len(), 6);
    assert!(out.best.score() > 0.85, "score {}", out.best.score());
    // k1 must map to "1" consistently across Conference and Paper.
    let k1_img = out.best.left_mapping.get(&k1).copied().unwrap();
    assert_eq!(
        k1_img,
        instance_comparison::core::Mapped::Const(one.as_const().unwrap())
    );
}

#[test]
fn egd_chase_vs_repair_philosophies() {
    // The same FD conflict: the egd chase *fails* on constant conflicts,
    // while repair systems *mark* them with labeled nulls — and the
    // similarity measure credits those marks.
    use instance_comparison::cleaning::{Fd, RepairSystem};
    use instance_comparison::exchange::{chase_egds, fd_egd};

    let mut cat = Catalog::new(Schema::single("Conf", &["Name", "Org"]));
    let rel = cat.schema().rel("Conf").unwrap();
    let vldb = cat.konst("VLDB");
    let a = cat.konst("VLDB End.");
    let b = cat.konst("VLDB Endowment");
    let mut dirty = Instance::new("dirty", &cat);
    dirty.insert(rel, vec![vldb, a]);
    dirty.insert(rel, vec![vldb, b]);

    // Data-exchange semantics: unsatisfiable.
    let egd = fd_egd(&cat, "Conf", &["Name"], "Org");
    assert!(chase_egds(&dirty, &[egd], &cat).is_err());

    // Repair semantics: mark the conflict (tie → labeled null).
    let fd = Fd::new(&cat, "Conf", &["Name"], "Org");
    let repaired = RepairSystem::Llunatic.repair(&dirty, &[fd], &mut cat, 1);
    assert_eq!(repaired.num_null_cells(), 2);
    // The marked repair is highly similar to either ground resolution.
    let mut resolved = Instance::new("gold", &cat);
    resolved.insert(rel, vec![vldb, a]);
    resolved.insert(rel, vec![vldb, a]);
    let s = signature_match(&repaired, &resolved, &cat, &SignatureConfig::default());
    assert!(s.best.score() > 0.7, "score {}", s.best.score());
    assert_eq!(s.best.pairs.len(), 2);
}
