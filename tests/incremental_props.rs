//! Property tests of the incremental delta re-scoring path
//! ([`CompareCache`]): for random instances and random chained tuple-level
//! deltas (inserts, deletes, cell modifications — null-introducing edits
//! included), the incrementally repaired comparison must be **bit-for-bit
//! identical** to comparing from scratch, in complete and partial
//! signature modes, at any thread count, and the repaired instance must
//! stay exact-refinable. Runs on `ic-testkit`: seeded, reproducible via
//! `IC_TESTKIT_SEED`, shrinking on failure.

use ic_testkit::{Gen, Runner};
use instance_comparison::core::{Comparator, Delta, DeltaOp};
use instance_comparison::model::{AttrId, Catalog, Instance, RelId, Schema, TupleId, Value};
use rand::RngExt;
use std::time::Duration;

/// Descriptor of a random cell: shared constant or a fresh labeled null.
#[derive(Debug, Clone, Copy)]
enum Cell {
    Const(u8),
    Null,
}

/// One tuple-level edit, abstract over concrete ids: indices are resolved
/// against the live tuples at application time (modulo the live count).
#[derive(Debug, Clone, Copy)]
enum Edit {
    Insert([Cell; 2]),
    Delete(u8),
    Modify(u8, u8, Cell),
}

/// A full case: the fixed left instance, the evolving right instance, and
/// a chain of deltas B → B′ → B″ → …
type Case = (Vec<[Cell; 2]>, Vec<[Cell; 2]>, Vec<Vec<Edit>>);

fn gen_cell(g: &mut Gen) -> Cell {
    if g.rng().random_bool(0.6) {
        Cell::Const(g.rng().random_range(0..5u8))
    } else {
        Cell::Null
    }
}

fn gen_rows(g: &mut Gen) -> Vec<[Cell; 2]> {
    g.vec_of(5, |g| [gen_cell(g), gen_cell(g)])
}

fn gen_edit(g: &mut Gen) -> Edit {
    match g.rng().random_range(0..3u8) {
        0 => Edit::Insert([gen_cell(g), gen_cell(g)]),
        1 => Edit::Delete(g.rng().random_range(0..16u8)),
        _ => Edit::Modify(
            g.rng().random_range(0..16u8),
            g.rng().random_range(0..2u8),
            gen_cell(g),
        ),
    }
}

fn gen_case(g: &mut Gen) -> Case {
    let left = gen_rows(g);
    let base = gen_rows(g);
    let chain = g.vec_of(3, |g| g.vec_of(3, gen_edit));
    (left, base, chain)
}

fn value(cat: &mut Catalog, c: Cell) -> Value {
    match c {
        Cell::Const(k) => cat.konst(&format!("c{k}")),
        Cell::Null => cat.fresh_null(),
    }
}

fn build(cat: &mut Catalog, name: &str, rows: &[[Cell; 2]]) -> Instance {
    let rel = RelId(0);
    let mut inst = Instance::new(name, cat);
    for row in rows {
        let vals: Vec<Value> = row.iter().map(|&c| value(cat, c)).collect();
        inst.insert(rel, vals);
    }
    inst
}

/// Resolves one edit chain into a concrete [`Delta`] against `cur`,
/// advancing a scratch copy op by op so indices always refer to live
/// tuples (the cache applies ops sequentially the same way).
fn materialize_delta(cat: &mut Catalog, cur: &Instance, edits: &[Edit]) -> Delta {
    let rel = RelId(0);
    let mut scratch = cur.clone();
    let mut ops = Vec::new();
    for e in edits {
        let live: Vec<TupleId> = scratch.tuples(rel).iter().map(|t| t.id()).collect();
        let op = match *e {
            Edit::Insert(row) => Some(DeltaOp::Insert {
                rel,
                values: row.iter().map(|&c| value(cat, c)).collect(),
            }),
            Edit::Delete(i) if !live.is_empty() => Some(DeltaOp::Delete {
                id: live[i as usize % live.len()],
            }),
            Edit::Modify(i, a, c) if !live.is_empty() => Some(DeltaOp::Modify {
                id: live[i as usize % live.len()],
                attr: AttrId(u16::from(a % 2)),
                value: value(cat, c),
            }),
            _ => None,
        };
        if let Some(op) = op {
            Delta::new(vec![op.clone()])
                .apply(&mut scratch)
                .expect("generated op is valid");
            ops.push(op);
        }
    }
    Delta::new(ops)
}

/// Materializes a case: catalog, left, base, and per-step (delta, expected
/// post-state) pairs. Everything value-creating happens here, before any
/// `Comparator` borrows the catalog.
fn materialize(case: &Case) -> (Catalog, Instance, Instance, Vec<(Delta, Instance)>) {
    let mut cat = Catalog::new(Schema::single("R", &["A", "B"]));
    let left = build(&mut cat, "L", &case.0);
    let base = build(&mut cat, "B", &case.1);
    let mut cur = base.clone();
    let mut steps = Vec::new();
    for edits in &case.2 {
        let delta = materialize_delta(&mut cat, &cur, edits);
        delta.apply(&mut cur).expect("materialized delta applies");
        steps.push((delta, cur.clone()));
    }
    (cat, left, base, steps)
}

/// The core assertion: walk the delta chain through a [`CompareCache`] and
/// demand bit-identity with from-scratch comparison at every step.
fn assert_chain_bit_identical(case: &Case, partial: bool, threads: usize) {
    let (cat, left, base, steps) = materialize(case);
    let cmp = Comparator::new(&cat)
        .partial(partial)
        .threads(threads)
        .build()
        .unwrap();
    let mut cache = cmp.compare_cache();
    cache.insert_owned("A", left.clone()).unwrap();
    cache.insert_owned("B", base.clone()).unwrap();

    let cached = cache.compare("A", "B").unwrap();
    let fresh = cmp.compare(&left, &base).unwrap();
    assert_eq!(cached.score().to_bits(), fresh.score().to_bits());
    assert_eq!(cached.outcome.best.pairs, fresh.outcome.best.pairs);

    for (step, (delta, expected)) in steps.iter().enumerate() {
        let inc = cache.compare_delta("A", "B", delta).unwrap();
        let fresh = cmp.compare(&left, expected).unwrap();
        assert_eq!(
            inc.score().to_bits(),
            fresh.score().to_bits(),
            "step {step} (partial={partial}, threads={threads}): \
             incremental {} vs from-scratch {}",
            inc.score(),
            fresh.score()
        );
        assert_eq!(inc.outcome.best.pairs, fresh.outcome.best.pairs);
        // The repaired instance is the real one, tuple for tuple.
        assert_eq!(
            cache.instance("B").unwrap().tuples(RelId(0)),
            expected.tuples(RelId(0)),
            "step {step}: repaired instance diverged"
        );
    }
}

/// Complete-match mode: incremental == from-scratch across chained random
/// deltas, sequential and parallel.
#[test]
fn incremental_matches_scratch_complete() {
    Runner::new("incremental_matches_scratch_complete")
        .cases(48)
        .run(gen_case, |case| {
            for threads in [1, 4] {
                assert_chain_bit_identical(case, false, threads);
            }
        });
}

/// Partial-match mode (subset signatures — the repair path touches many
/// buckets per tuple): incremental == from-scratch, sequential and
/// parallel.
#[test]
fn incremental_matches_scratch_partial() {
    Runner::new("incremental_matches_scratch_partial")
        .cases(48)
        .run(gen_case, |case| {
            for threads in [1, 4] {
                assert_chain_bit_identical(case, true, threads);
            }
        });
}

/// Exact-refine mode: the instance the cache maintains through a delta
/// chain is structurally identical to the real one, so the exact
/// branch-and-bound over it returns bit-identical scores — refining a
/// cached signature result never sees a stale instance.
#[test]
fn exact_refine_on_repaired_instance_matches_scratch() {
    Runner::new("exact_refine_on_repaired_instance_matches_scratch")
        .cases(32)
        .run(gen_case, |case| {
            let (cat, left, base, steps) = materialize(case);
            let cmp = Comparator::new(&cat).build().unwrap();
            let mut cache = cmp.compare_cache();
            cache.insert_owned("A", left.clone()).unwrap();
            cache.insert_owned("B", base).unwrap();
            for (delta, expected) in &steps {
                cache.compare_delta("A", "B", delta).unwrap();
                let repaired = cache.instance("B").unwrap().clone();
                let via_cache = cmp.exact(&left, &repaired).unwrap();
                let scratch = cmp.exact(&left, expected).unwrap();
                assert_eq!(via_cache.optimal, scratch.optimal);
                assert_eq!(
                    via_cache.best.score().to_bits(),
                    scratch.best.score().to_bits()
                );
                assert_eq!(via_cache.best.pairs, scratch.best.pairs);
            }
        });
}

/// Budget/timeout interaction (satellite 2): a `timed_out` comparison —
/// before or between delta repairs — must never be memoized and must
/// leave the cache's instance and signature maps in a state from which an
/// unbudgeted run still matches from-scratch, bit for bit.
#[test]
fn timed_out_compare_leaves_cache_consistent() {
    Runner::new("timed_out_compare_leaves_cache_consistent")
        .cases(32)
        .run(gen_case, |case| {
            let (cat, left, base, steps) = materialize(case);
            // An already-expired deadline: every matching phase times out,
            // while map builds and delta repairs (deadline-free) proceed.
            let strained = Comparator::new(&cat)
                .budget(Duration::ZERO)
                .build()
                .unwrap();
            let mut cache = strained.compare_cache();
            cache.insert_owned("A", left.clone()).unwrap();
            cache.insert_owned("B", base).unwrap();

            let first = cache.compare("A", "B").unwrap();
            let again = cache.compare("A", "B").unwrap();
            assert_eq!(first.score().to_bits(), again.score().to_bits());
            if first.outcome.timed_out {
                assert_eq!(
                    cache.stats().outcome_hits,
                    0,
                    "timed-out comparisons must not be memoized"
                );
            }
            for (delta, expected) in &steps {
                let _ = cache.compare_delta("A", "B", delta).unwrap();
                // Seed an *unbudgeted* run from the strained cache's maps
                // and instance: it must equal from-scratch exactly.
                let relaxed = Comparator::new(&cat).build().unwrap();
                let seeded = relaxed
                    .signature_with_maps(
                        &left,
                        cache.instance("B").unwrap(),
                        cache.maps("A"),
                        cache.maps("B"),
                    )
                    .unwrap();
                let scratch = relaxed.signature(&left, expected).unwrap();
                assert!(!seeded.timed_out && !scratch.timed_out);
                assert_eq!(
                    seeded.best.score().to_bits(),
                    scratch.best.score().to_bits()
                );
                assert_eq!(seeded.best.pairs, scratch.best.pairs);
            }
        });
}

/// Thread-count independence of the whole cached pipeline: the same chain
/// walked at 1 and 4 threads yields identical bits at every step (the
/// `IC_POOL_THREADS` matrix in CI crosses this with the ambient pool).
#[test]
fn cached_chain_is_thread_count_invariant() {
    Runner::new("cached_chain_is_thread_count_invariant")
        .cases(24)
        .run(gen_case, |case| {
            let (cat, left, base, steps) = materialize(case);
            let mut per_thread_scores: Vec<Vec<u64>> = Vec::new();
            for threads in [1, 4] {
                let cmp = Comparator::new(&cat).threads(threads).build().unwrap();
                let mut cache = cmp.compare_cache();
                cache.insert_owned("A", left.clone()).unwrap();
                cache.insert_owned("B", base.clone()).unwrap();
                let mut scores = vec![cache.compare("A", "B").unwrap().score().to_bits()];
                for (delta, _) in &steps {
                    scores.push(
                        cache
                            .compare_delta("A", "B", delta)
                            .unwrap()
                            .score()
                            .to_bits(),
                    );
                }
                per_thread_scores.push(scores);
            }
            assert_eq!(
                per_thread_scores[0], per_thread_scores[1],
                "1-thread vs 4-thread cached chains diverged"
            );
        });
}
