//! Performance regression guards (release builds only — debug builds are
//! 10–50× slower and would make the bounds meaningless, so the tests are
//! ignored there).

use instance_comparison::core::{signature_match, SignatureConfig};
use instance_comparison::datagen::{mod_cell, Dataset};
use std::time::{Duration, Instant};

#[test]
#[cfg_attr(debug_assertions, ignore = "timing guard only meaningful in release builds")]
fn signature_5k_under_two_seconds() {
    let sc = mod_cell(Dataset::Bikeshare, 5_000, 0.05, 4242);
    let start = Instant::now();
    let out = signature_match(&sc.source, &sc.target, &sc.catalog, &SignatureConfig::default());
    let elapsed = start.elapsed();
    assert!(out.best.pairs.len() > 2_500);
    assert!(
        elapsed < Duration::from_secs(2),
        "signature on 5k rows took {elapsed:?}"
    );
}

#[test]
#[cfg_attr(debug_assertions, ignore = "timing guard only meaningful in release builds")]
fn gold_scoring_5k_under_two_seconds() {
    use instance_comparison::core::ScoreConfig;
    let sc = mod_cell(Dataset::GitHub, 5_000, 0.05, 4242);
    let start = Instant::now();
    let score = sc.gold_score(&ScoreConfig::default());
    let elapsed = start.elapsed();
    assert!(score > 0.2);
    assert!(
        elapsed < Duration::from_secs(2),
        "gold scoring on 5k rows took {elapsed:?}"
    );
}
