//! Performance regression guards (release builds only — debug builds are
//! 10–50× slower and would make the bounds meaningless, so the tests are
//! ignored there).

use instance_comparison::core::{signature_match, ScoreConfig, SignatureConfig};
use instance_comparison::datagen::{mod_cell, Dataset};
use std::time::{Duration, Instant};

/// Debug-safe companion to the timing guards below: a tiny `mod_cell`
/// scenario with fully pinned expected output and no timing assertions, so
/// the hot path is exercised even where the release-only guards are
/// ignored. The constants come from the deterministic in-tree `rand`
/// stream; they are identical in debug and release builds.
#[test]
fn signature_smoke_deterministic() {
    let sc = mod_cell(Dataset::Doctors, 40, 0.05, 4242);
    assert_eq!(sc.source.num_tuples(), 40);
    assert_eq!(sc.target.num_tuples(), 40);
    let out = signature_match(
        &sc.source,
        &sc.target,
        &sc.catalog,
        &SignatureConfig::default(),
    );
    assert_eq!(out.best.pairs.len(), 33, "matched-pair count drifted");
    let score = out.best.score();
    assert!(
        (score - 0.7958333333333334).abs() < 1e-15,
        "score drifted: {score:.17}"
    );
    // On this scenario the greedy signature match recovers the gold score.
    let gold = sc.gold_score(&ScoreConfig::default());
    assert!(
        (score - gold).abs() < 1e-15,
        "gold {gold:.17} vs {score:.17}"
    );
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "timing guard only meaningful in release builds"
)]
fn signature_5k_under_two_seconds() {
    let sc = mod_cell(Dataset::Bikeshare, 5_000, 0.05, 4242);
    let start = Instant::now();
    let out = signature_match(
        &sc.source,
        &sc.target,
        &sc.catalog,
        &SignatureConfig::default(),
    );
    let elapsed = start.elapsed();
    assert!(out.best.pairs.len() > 2_500);
    assert!(
        elapsed < Duration::from_secs(2),
        "signature on 5k rows took {elapsed:?}"
    );
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "timing guard only meaningful in release builds"
)]
fn gold_scoring_5k_under_two_seconds() {
    use instance_comparison::core::ScoreConfig;
    let sc = mod_cell(Dataset::GitHub, 5_000, 0.05, 4242);
    let start = Instant::now();
    let score = sc.gold_score(&ScoreConfig::default());
    let elapsed = start.elapsed();
    assert!(score > 0.2);
    assert!(
        elapsed < Duration::from_secs(2),
        "gold scoring on 5k rows took {elapsed:?}"
    );
}
