//! Property-based tests of the similarity measure's axioms (paper Eq. 1–5)
//! and of the exact algorithm's optimality, on randomly generated small
//! instances.

use instance_comparison::core::{
    exact_match, ground_similarity, score_state, signature_match, ExactConfig, MatchMode,
    MatchState, ScoreConfig, SignatureConfig,
};
use instance_comparison::model::{Catalog, Instance, RelId, Schema, TupleId, Value};
use proptest::prelude::*;

const EPS: f64 = 1e-9;

/// Descriptor of a random cell: constant index or null index.
#[derive(Debug, Clone, Copy)]
enum Cell {
    Const(u8),
    Null(u8),
}

fn cell_strategy() -> impl Strategy<Value = Cell> {
    prop_oneof![
        (0u8..4).prop_map(Cell::Const),
        (0u8..3).prop_map(Cell::Null),
    ]
}

/// A random instance descriptor: up to 4 tuples of arity 2.
fn instance_strategy() -> impl Strategy<Value = Vec<[Cell; 2]>> {
    prop::collection::vec(
        (cell_strategy(), cell_strategy()).prop_map(|(a, b)| [a, b]),
        0..4,
    )
}

/// Materializes a descriptor. Null indexes are instance-local (two
/// descriptors never share nulls), constants are shared via the catalog.
fn build(catalog: &mut Catalog, name: &str, desc: &[[Cell; 2]]) -> Instance {
    let rel = RelId(0);
    let mut nulls: Vec<Option<Value>> = vec![None; 4];
    let mut inst = Instance::new(name, catalog);
    for row in desc {
        let vals: Vec<Value> = row
            .iter()
            .map(|c| match *c {
                Cell::Const(k) => catalog.konst(&format!("c{k}")),
                Cell::Null(k) => *nulls[k as usize].get_or_insert_with(|| catalog.fresh_null()),
            })
            .collect();
        inst.insert(rel, vals);
    }
    inst
}

fn fresh_catalog() -> Catalog {
    Catalog::new(Schema::single("R", &["A", "B"]))
}

/// Brute force: enumerate every 1-1 tuple mapping (over all pairs, not just
/// compatible ones) and take the best feasible score.
fn brute_force_one_to_one(left: &Instance, right: &Instance, catalog: &Catalog) -> f64 {
    let rel = RelId(0);
    let lids: Vec<TupleId> = left.tuples(rel).iter().map(|t| t.id()).collect();
    let rids: Vec<TupleId> = right.tuples(rel).iter().map(|t| t.id()).collect();
    let mut best = f64::MIN;
    let cfg = ScoreConfig::default();

    #[allow(clippy::too_many_arguments)]
    fn rec(
        i: usize,
        lids: &[TupleId],
        rids: &[TupleId],
        used: &mut Vec<bool>,
        state: &mut MatchState<'_>,
        cfg: &ScoreConfig,
        catalog: &Catalog,
        best: &mut f64,
    ) {
        if i == lids.len() {
            let s = score_state(state, cfg, catalog).score;
            if s > *best {
                *best = s;
            }
            return;
        }
        // Skip tuple i.
        rec(i + 1, lids, rids, used, state, cfg, catalog, best);
        // Match tuple i with any unused right tuple.
        for (j, &rid) in rids.iter().enumerate() {
            if used[j] {
                continue;
            }
            if state.try_push_pair(RelId(0), lids[i], rid, false).is_ok() {
                used[j] = true;
                rec(i + 1, lids, rids, used, state, cfg, catalog, best);
                used[j] = false;
                state.pop_pair();
            }
        }
    }

    let mut state = MatchState::new(left, right);
    let mut used = vec![false; rids.len()];
    rec(
        0, &lids, &rids, &mut used, &mut state, &cfg, catalog, &mut best,
    );
    best
}

/// Brute force for the general (n-to-m) mode: enumerate every subset of the
/// full pair grid (capped sizes keep this 2^9 at most).
fn brute_force_general(left: &Instance, right: &Instance, catalog: &Catalog) -> f64 {
    let rel = RelId(0);
    let lids: Vec<TupleId> = left.tuples(rel).iter().map(|t| t.id()).collect();
    let rids: Vec<TupleId> = right.tuples(rel).iter().map(|t| t.id()).collect();
    let grid: Vec<(TupleId, TupleId)> = lids
        .iter()
        .flat_map(|&l| rids.iter().map(move |&r| (l, r)))
        .collect();
    assert!(grid.len() <= 12, "brute force grid too large");
    let cfg = ScoreConfig::default();
    let mut best = f64::MIN;
    let mut state = MatchState::new(left, right);

    fn rec(
        i: usize,
        grid: &[(TupleId, TupleId)],
        state: &mut MatchState<'_>,
        cfg: &ScoreConfig,
        catalog: &Catalog,
        best: &mut f64,
    ) {
        if i == grid.len() {
            let s = score_state(state, cfg, catalog).score;
            if s > *best {
                *best = s;
            }
            return;
        }
        rec(i + 1, grid, state, cfg, catalog, best);
        let (l, r) = grid[i];
        if state.try_push_pair(RelId(0), l, r, false).is_ok() {
            rec(i + 1, grid, state, cfg, catalog, best);
            state.pop_pair();
        }
    }
    rec(0, &grid, &mut state, &cfg, catalog, &mut best);
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Eq. 1 / Eq. 2: an instance is maximally similar to itself (comparing
    /// an instance with itself is an isomorphic comparison; shared nulls
    /// are implicitly renamed apart).
    #[test]
    fn self_similarity_is_one(desc in instance_strategy()) {
        let mut cat = fresh_catalog();
        let inst = build(&mut cat, "I", &desc);
        let out = exact_match(&inst, &inst, &cat, &ExactConfig::default());
        prop_assert!(out.optimal);
        prop_assert!((out.best.score() - 1.0).abs() < EPS,
            "self similarity {}", out.best.score());
    }

    /// Eq. 2: isomorphic instances (nulls renamed) are maximally similar.
    #[test]
    fn isomorphic_instances_score_one(desc in instance_strategy()) {
        let mut cat = fresh_catalog();
        let left = build(&mut cat, "I", &desc);
        let right = build(&mut cat, "J", &desc); // same shape, fresh nulls
        let out = exact_match(&left, &right, &cat, &ExactConfig::default());
        prop_assert!((out.best.score() - 1.0).abs() < EPS);
    }

    /// Eq. 5: the measure is symmetric.
    #[test]
    fn similarity_is_symmetric(a in instance_strategy(), b in instance_strategy()) {
        let mut cat = fresh_catalog();
        let left = build(&mut cat, "I", &a);
        let right = build(&mut cat, "J", &b);
        let lr = exact_match(&left, &right, &cat, &ExactConfig::default());
        let rl = exact_match(&right, &left, &cat, &ExactConfig::default());
        prop_assert!(lr.optimal && rl.optimal);
        prop_assert!((lr.best.score() - rl.best.score()).abs() < EPS,
            "{} vs {}", lr.best.score(), rl.best.score());
    }

    /// The score is always within [0, 1].
    #[test]
    fn score_in_unit_interval(a in instance_strategy(), b in instance_strategy()) {
        let mut cat = fresh_catalog();
        let left = build(&mut cat, "I", &a);
        let right = build(&mut cat, "J", &b);
        for mode in [MatchMode::one_to_one(), MatchMode::general()] {
            let cfg = ExactConfig { mode, ..Default::default() };
            let s = exact_match(&left, &right, &cat, &cfg).best.score();
            prop_assert!((0.0..=1.0 + EPS).contains(&s), "score {s}");
        }
    }

    /// The signature algorithm produces a feasible match, so it can never
    /// exceed the exact optimum; and the general mode dominates 1-1.
    #[test]
    fn signature_bounded_by_exact(a in instance_strategy(), b in instance_strategy()) {
        let mut cat = fresh_catalog();
        let left = build(&mut cat, "I", &a);
        let right = build(&mut cat, "J", &b);
        let exact = exact_match(&left, &right, &cat, &ExactConfig::default());
        let sig = signature_match(&left, &right, &cat, &SignatureConfig::default());
        prop_assert!(exact.optimal);
        prop_assert!(sig.best.score() <= exact.best.score() + EPS,
            "sig {} > exact {}", sig.best.score(), exact.best.score());
        let gen = exact_match(&left, &right, &cat, &ExactConfig {
            mode: MatchMode::general(), ..Default::default()
        });
        prop_assert!(gen.best.score() + EPS >= exact.best.score());
    }

    /// The branch-and-bound equals a brute-force enumeration of all 1-1
    /// matchings.
    #[test]
    fn exact_equals_brute_force(a in instance_strategy(), b in instance_strategy()) {
        let mut cat = fresh_catalog();
        let left = build(&mut cat, "I", &a);
        let right = build(&mut cat, "J", &b);
        let exact = exact_match(&left, &right, &cat, &ExactConfig::default());
        let brute = brute_force_one_to_one(&left, &right, &cat);
        prop_assert!(exact.optimal);
        prop_assert!((exact.best.score() - brute).abs() < EPS,
            "exact {} vs brute {}", exact.best.score(), brute);
    }

    /// The general-mode branch-and-bound equals brute-force enumeration of
    /// every pair subset (tiny instances: ≤3 tuples per side).
    #[test]
    fn exact_general_equals_brute_force(
        a in prop::collection::vec(
            (cell_strategy(), cell_strategy()).prop_map(|(x, y)| [x, y]), 0..4),
        b in prop::collection::vec(
            (cell_strategy(), cell_strategy()).prop_map(|(x, y)| [x, y]), 0..4),
    ) {
        prop_assume!(a.len() * b.len() <= 12);
        let mut cat = fresh_catalog();
        let left = build(&mut cat, "I", &a);
        let right = build(&mut cat, "J", &b);
        let exact = exact_match(&left, &right, &cat, &ExactConfig {
            mode: MatchMode::general(),
            ..Default::default()
        });
        let brute = brute_force_general(&left, &right, &cat);
        prop_assert!(exact.optimal);
        prop_assert!((exact.best.score() - brute).abs() < EPS,
            "exact {} vs brute {}", exact.best.score(), brute);
    }

    /// Eq. 4: disjoint ground instances are minimally similar. We force
    /// disjointness by using distinct constant pools.
    #[test]
    fn disjoint_ground_instances_score_zero(n in 1usize..4, m in 1usize..4) {
        let mut cat = fresh_catalog();
        let rel = RelId(0);
        let mut left = Instance::new("I", &cat);
        for i in 0..n {
            let v = cat.konst(&format!("l{i}"));
            left.insert(rel, vec![v, v]);
        }
        let mut right = Instance::new("J", &cat);
        for i in 0..m {
            let v = cat.konst(&format!("r{i}"));
            right.insert(rel, vec![v, v]);
        }
        let out = exact_match(&left, &right, &cat, &ExactConfig::default());
        prop_assert!(out.best.score().abs() < EPS);
    }

    /// Thm. 5.11's tractable case: on ground instances the linear-time
    /// algorithm equals the exact optimum.
    #[test]
    fn ground_algorithm_equals_exact(
        a in prop::collection::vec(((0u8..4), (0u8..4)), 0..4),
        b in prop::collection::vec(((0u8..4), (0u8..4)), 0..4),
    ) {
        let mut cat = fresh_catalog();
        let rel = RelId(0);
        let mut left = Instance::new("I", &cat);
        for (x, y) in &a {
            let vx = cat.konst(&format!("c{x}"));
            let vy = cat.konst(&format!("c{y}"));
            left.insert(rel, vec![vx, vy]);
        }
        let mut right = Instance::new("J", &cat);
        for (x, y) in &b {
            let vx = cat.konst(&format!("c{x}"));
            let vy = cat.konst(&format!("c{y}"));
            right.insert(rel, vec![vx, vy]);
        }
        let g = ground_similarity(&left, &right, &cat);
        let e = exact_match(&left, &right, &cat, &ExactConfig::default());
        prop_assert!(e.optimal);
        prop_assert!((g - e.best.score()).abs() < EPS, "ground {g} vs exact {}", e.best.score());
    }

    /// The signature algorithm always returns a *valid* match: pairs
    /// respect the mode's injectivity, replaying them is feasible, and the
    /// reported score equals the replayed score.
    #[test]
    fn signature_output_is_valid(a in instance_strategy(), b in instance_strategy()) {
        let mut cat = fresh_catalog();
        let left = build(&mut cat, "I", &a);
        let right = build(&mut cat, "J", &b);
        for mode in [MatchMode::one_to_one(), MatchMode::left_functional(), MatchMode::general()] {
            let cfg = SignatureConfig { mode, ..Default::default() };
            let out = signature_match(&left, &right, &cat, &cfg);
            if mode.left_injective {
                prop_assert!(out.best.is_left_injective());
            }
            if mode.right_injective {
                prop_assert!(out.best.is_right_injective());
            }
            // Replay: all pairs feasible, same score.
            let mut st = MatchState::new(&left, &right);
            for p in &out.best.pairs {
                prop_assert!(st.try_push_pair(p.rel, p.left, p.right, false).is_ok());
            }
            let replayed = score_state(&st, &ScoreConfig::default(), &cat).score;
            prop_assert!((replayed - out.best.score()).abs() < EPS);
            // Determinism.
            let again = signature_match(&left, &right, &cat, &cfg);
            prop_assert_eq!(out.best.pairs.clone(), again.best.pairs);
        }
    }

    /// Pushing and popping pairs leaves the match state equivalent to a
    /// fresh one (rollback soundness), observed through scores.
    #[test]
    fn push_pop_is_identity(a in instance_strategy(), b in instance_strategy()) {
        let mut cat = fresh_catalog();
        let left = build(&mut cat, "I", &a);
        let right = build(&mut cat, "J", &b);
        let rel = RelId(0);
        let cfg = ScoreConfig::default();
        let baseline = {
            let st = MatchState::new(&left, &right);
            score_state(&st, &cfg, &cat).score
        };
        let mut st = MatchState::new(&left, &right);
        let lids: Vec<TupleId> = left.tuples(rel).iter().map(|t| t.id()).collect();
        let rids: Vec<TupleId> = right.tuples(rel).iter().map(|t| t.id()).collect();
        let mut pushed = 0;
        for &l in &lids {
            for &r in &rids {
                if st.try_push_pair(rel, l, r, false).is_ok() {
                    pushed += 1;
                }
            }
        }
        for _ in 0..pushed {
            st.pop_pair();
        }
        let after = score_state(&st, &cfg, &cat).score;
        prop_assert!((baseline - after).abs() < EPS);
        prop_assert_eq!(st.uf().unions(), 0);
    }
}
