//! Property-based tests of the similarity measure's axioms (paper Eq. 1–5)
//! and of the exact algorithm's optimality, on randomly generated small
//! instances. Runs on `ic-testkit`: every property is seeded and
//! reproducible via the `IC_TESTKIT_SEED` environment variable.

use ic_testkit::{assume, Gen, Runner};
use instance_comparison::core::{
    exact_match, ground_similarity, score_state, signature_match, ExactConfig, MatchMode,
    MatchState, ScoreConfig, SignatureConfig,
};
use instance_comparison::model::{Catalog, Instance, RelId, Schema, TupleId, Value};
use rand::RngExt;

const EPS: f64 = 1e-9;

/// Descriptor of a random cell: constant index or null index.
#[derive(Debug, Clone, Copy)]
enum Cell {
    Const(u8),
    Null(u8),
}

fn gen_cell(g: &mut Gen) -> Cell {
    if g.rng().random_bool(0.5) {
        Cell::Const(g.rng().random_range(0..4u8))
    } else {
        Cell::Null(g.rng().random_range(0..3u8))
    }
}

/// A random instance descriptor: up to 3 tuples of arity 2 (the proptest
/// suite's `0..4` row bound), further capped by the shrinker's size.
fn gen_instance(g: &mut Gen) -> Vec<[Cell; 2]> {
    g.vec_of(3, |g| [gen_cell(g), gen_cell(g)])
}

/// Materializes a descriptor. Null indexes are instance-local (two
/// descriptors never share nulls), constants are shared via the catalog.
fn build(catalog: &mut Catalog, name: &str, desc: &[[Cell; 2]]) -> Instance {
    let rel = RelId(0);
    let mut nulls: Vec<Option<Value>> = vec![None; 4];
    let mut inst = Instance::new(name, catalog);
    for row in desc {
        let vals: Vec<Value> = row
            .iter()
            .map(|c| match *c {
                Cell::Const(k) => catalog.konst(&format!("c{k}")),
                Cell::Null(k) => *nulls[k as usize].get_or_insert_with(|| catalog.fresh_null()),
            })
            .collect();
        inst.insert(rel, vals);
    }
    inst
}

fn fresh_catalog() -> Catalog {
    Catalog::new(Schema::single("R", &["A", "B"]))
}

/// Brute force: enumerate every 1-1 tuple mapping (over all pairs, not just
/// compatible ones) and take the best feasible score.
fn brute_force_one_to_one(left: &Instance, right: &Instance, catalog: &Catalog) -> f64 {
    let rel = RelId(0);
    let lids: Vec<TupleId> = left.tuples(rel).iter().map(|t| t.id()).collect();
    let rids: Vec<TupleId> = right.tuples(rel).iter().map(|t| t.id()).collect();
    let mut best = f64::MIN;
    let cfg = ScoreConfig::default();

    #[allow(clippy::too_many_arguments)]
    fn rec(
        i: usize,
        lids: &[TupleId],
        rids: &[TupleId],
        used: &mut Vec<bool>,
        state: &mut MatchState<'_>,
        cfg: &ScoreConfig,
        catalog: &Catalog,
        best: &mut f64,
    ) {
        if i == lids.len() {
            let s = score_state(state, cfg, catalog).score;
            if s > *best {
                *best = s;
            }
            return;
        }
        // Skip tuple i.
        rec(i + 1, lids, rids, used, state, cfg, catalog, best);
        // Match tuple i with any unused right tuple.
        for (j, &rid) in rids.iter().enumerate() {
            if used[j] {
                continue;
            }
            if state.try_push_pair(RelId(0), lids[i], rid, false).is_ok() {
                used[j] = true;
                rec(i + 1, lids, rids, used, state, cfg, catalog, best);
                used[j] = false;
                state.pop_pair();
            }
        }
    }

    let mut state = MatchState::new(left, right);
    let mut used = vec![false; rids.len()];
    rec(
        0, &lids, &rids, &mut used, &mut state, &cfg, catalog, &mut best,
    );
    best
}

/// Brute force for the general (n-to-m) mode: enumerate every subset of the
/// full pair grid (capped sizes keep this 2^9 at most).
fn brute_force_general(left: &Instance, right: &Instance, catalog: &Catalog) -> f64 {
    let rel = RelId(0);
    let lids: Vec<TupleId> = left.tuples(rel).iter().map(|t| t.id()).collect();
    let rids: Vec<TupleId> = right.tuples(rel).iter().map(|t| t.id()).collect();
    let grid: Vec<(TupleId, TupleId)> = lids
        .iter()
        .flat_map(|&l| rids.iter().map(move |&r| (l, r)))
        .collect();
    assert!(grid.len() <= 12, "brute force grid too large");
    let cfg = ScoreConfig::default();
    let mut best = f64::MIN;
    let mut state = MatchState::new(left, right);

    fn rec(
        i: usize,
        grid: &[(TupleId, TupleId)],
        state: &mut MatchState<'_>,
        cfg: &ScoreConfig,
        catalog: &Catalog,
        best: &mut f64,
    ) {
        if i == grid.len() {
            let s = score_state(state, cfg, catalog).score;
            if s > *best {
                *best = s;
            }
            return;
        }
        rec(i + 1, grid, state, cfg, catalog, best);
        let (l, r) = grid[i];
        if state.try_push_pair(RelId(0), l, r, false).is_ok() {
            rec(i + 1, grid, state, cfg, catalog, best);
            state.pop_pair();
        }
    }
    rec(0, &grid, &mut state, &cfg, catalog, &mut best);
    best
}

/// Eq. 1 / Eq. 2: an instance is maximally similar to itself (comparing
/// an instance with itself is an isomorphic comparison; shared nulls
/// are implicitly renamed apart).
#[test]
fn self_similarity_is_one() {
    Runner::new("self_similarity_is_one").cases(64).run(
        |g| gen_instance(g),
        |desc| {
            let mut cat = fresh_catalog();
            let inst = build(&mut cat, "I", desc);
            let out = exact_match(&inst, &inst, &cat, &ExactConfig::default());
            assert!(out.optimal);
            assert!(
                (out.best.score() - 1.0).abs() < EPS,
                "self similarity {}",
                out.best.score()
            );
        },
    );
}

/// Eq. 2: isomorphic instances (nulls renamed) are maximally similar.
#[test]
fn isomorphic_instances_score_one() {
    Runner::new("isomorphic_instances_score_one").cases(64).run(
        |g| gen_instance(g),
        |desc| {
            let mut cat = fresh_catalog();
            let left = build(&mut cat, "I", desc);
            let right = build(&mut cat, "J", desc); // same shape, fresh nulls
            let out = exact_match(&left, &right, &cat, &ExactConfig::default());
            assert!((out.best.score() - 1.0).abs() < EPS);
        },
    );
}

/// Eq. 5: the measure is symmetric.
#[test]
fn similarity_is_symmetric() {
    Runner::new("similarity_is_symmetric").cases(64).run(
        |g| (gen_instance(g), gen_instance(g)),
        |(a, b)| {
            let mut cat = fresh_catalog();
            let left = build(&mut cat, "I", a);
            let right = build(&mut cat, "J", b);
            let lr = exact_match(&left, &right, &cat, &ExactConfig::default());
            let rl = exact_match(&right, &left, &cat, &ExactConfig::default());
            assert!(lr.optimal && rl.optimal);
            assert!(
                (lr.best.score() - rl.best.score()).abs() < EPS,
                "{} vs {}",
                lr.best.score(),
                rl.best.score()
            );
        },
    );
}

/// The score is always within [0, 1].
#[test]
fn score_in_unit_interval() {
    Runner::new("score_in_unit_interval").cases(64).run(
        |g| (gen_instance(g), gen_instance(g)),
        |(a, b)| {
            let mut cat = fresh_catalog();
            let left = build(&mut cat, "I", a);
            let right = build(&mut cat, "J", b);
            for mode in [MatchMode::one_to_one(), MatchMode::general()] {
                let cfg = ExactConfig {
                    mode,
                    ..Default::default()
                };
                let s = exact_match(&left, &right, &cat, &cfg).best.score();
                assert!((0.0..=1.0 + EPS).contains(&s), "score {s}");
            }
        },
    );
}

/// The signature algorithm produces a feasible match, so it can never
/// exceed the exact optimum; and the general mode dominates 1-1.
#[test]
fn signature_bounded_by_exact() {
    Runner::new("signature_bounded_by_exact").cases(64).run(
        |g| (gen_instance(g), gen_instance(g)),
        |(a, b)| {
            let mut cat = fresh_catalog();
            let left = build(&mut cat, "I", a);
            let right = build(&mut cat, "J", b);
            let exact = exact_match(&left, &right, &cat, &ExactConfig::default());
            let sig = signature_match(&left, &right, &cat, &SignatureConfig::default());
            assert!(exact.optimal);
            assert!(
                sig.best.score() <= exact.best.score() + EPS,
                "sig {} > exact {}",
                sig.best.score(),
                exact.best.score()
            );
            let gen = exact_match(
                &left,
                &right,
                &cat,
                &ExactConfig {
                    mode: MatchMode::general(),
                    ..Default::default()
                },
            );
            assert!(gen.best.score() + EPS >= exact.best.score());
        },
    );
}

/// The branch-and-bound equals a brute-force enumeration of all 1-1
/// matchings.
#[test]
fn exact_equals_brute_force() {
    Runner::new("exact_equals_brute_force").cases(64).run(
        |g| (gen_instance(g), gen_instance(g)),
        |(a, b)| {
            let mut cat = fresh_catalog();
            let left = build(&mut cat, "I", a);
            let right = build(&mut cat, "J", b);
            let exact = exact_match(&left, &right, &cat, &ExactConfig::default());
            let brute = brute_force_one_to_one(&left, &right, &cat);
            assert!(exact.optimal);
            assert!(
                (exact.best.score() - brute).abs() < EPS,
                "exact {} vs brute {}",
                exact.best.score(),
                brute
            );
        },
    );
}

/// The general-mode branch-and-bound equals brute-force enumeration of
/// every pair subset (tiny instances: ≤3 tuples per side).
#[test]
fn exact_general_equals_brute_force() {
    Runner::new("exact_general_equals_brute_force")
        .cases(64)
        .run(
            |g| (gen_instance(g), gen_instance(g)),
            |(a, b)| {
                assume(a.len() * b.len() <= 12);
                let mut cat = fresh_catalog();
                let left = build(&mut cat, "I", a);
                let right = build(&mut cat, "J", b);
                let exact = exact_match(
                    &left,
                    &right,
                    &cat,
                    &ExactConfig {
                        mode: MatchMode::general(),
                        ..Default::default()
                    },
                );
                let brute = brute_force_general(&left, &right, &cat);
                assert!(exact.optimal);
                assert!(
                    (exact.best.score() - brute).abs() < EPS,
                    "exact {} vs brute {}",
                    exact.best.score(),
                    brute
                );
            },
        );
}

/// Eq. 4: disjoint ground instances are minimally similar. We force
/// disjointness by using distinct constant pools.
#[test]
fn disjoint_ground_instances_score_zero() {
    Runner::new("disjoint_ground_instances_score_zero")
        .cases(64)
        .run(
            |g| {
                (
                    g.rng().random_range(1..4usize),
                    g.rng().random_range(1..4usize),
                )
            },
            |&(n, m)| {
                let mut cat = fresh_catalog();
                let rel = RelId(0);
                let mut left = Instance::new("I", &cat);
                for i in 0..n {
                    let v = cat.konst(&format!("l{i}"));
                    left.insert(rel, vec![v, v]);
                }
                let mut right = Instance::new("J", &cat);
                for i in 0..m {
                    let v = cat.konst(&format!("r{i}"));
                    right.insert(rel, vec![v, v]);
                }
                let out = exact_match(&left, &right, &cat, &ExactConfig::default());
                assert!(out.best.score().abs() < EPS);
            },
        );
}

/// A random ground-instance descriptor: rows of constant index pairs.
fn gen_ground(g: &mut Gen) -> Vec<(u8, u8)> {
    g.vec_of(3, |g| {
        (g.rng().random_range(0..4u8), g.rng().random_range(0..4u8))
    })
}

fn build_ground(cat: &mut Catalog, name: &str, rows: &[(u8, u8)]) -> Instance {
    let rel = RelId(0);
    let mut inst = Instance::new(name, cat);
    for (x, y) in rows {
        let vx = cat.konst(&format!("c{x}"));
        let vy = cat.konst(&format!("c{y}"));
        inst.insert(rel, vec![vx, vy]);
    }
    inst
}

/// Thm. 5.11's tractable case: on ground instances the linear-time
/// algorithm equals the exact optimum.
#[test]
fn ground_algorithm_equals_exact() {
    Runner::new("ground_algorithm_equals_exact").cases(64).run(
        |g| (gen_ground(g), gen_ground(g)),
        |(a, b)| {
            let mut cat = fresh_catalog();
            let left = build_ground(&mut cat, "I", a);
            let right = build_ground(&mut cat, "J", b);
            let g = ground_similarity(&left, &right, &cat);
            let e = exact_match(&left, &right, &cat, &ExactConfig::default());
            assert!(e.optimal);
            assert!(
                (g - e.best.score()).abs() < EPS,
                "ground {g} vs exact {}",
                e.best.score()
            );
        },
    );
}

/// Eq. 1 on the tractable path: a non-empty ground instance compared with
/// itself scores exactly 1 under the linear-time ground algorithm.
#[test]
fn ground_self_similarity_is_one() {
    Runner::new("ground_self_similarity_is_one").cases(64).run(
        |g| {
            let mut rows = gen_ground(g);
            if rows.is_empty() {
                rows.push((g.rng().random_range(0..4u8), g.rng().random_range(0..4u8)));
            }
            rows
        },
        |rows| {
            let mut cat = fresh_catalog();
            let inst = build_ground(&mut cat, "I", rows);
            let s = ground_similarity(&inst, &inst, &cat);
            assert!((s - 1.0).abs() < EPS, "ground self similarity {s}");
        },
    );
}

/// λ-penalty monotonicity: λ is the credit a matched null earns, so for
/// the *optimal* match the similarity is non-decreasing in λ (each fixed
/// match state's score is non-decreasing in λ, and max preserves that).
#[test]
fn lambda_penalty_is_monotone() {
    Runner::new("lambda_penalty_is_monotone").cases(64).run(
        |g| (gen_instance(g), gen_instance(g)),
        |(a, b)| {
            let mut cat = fresh_catalog();
            let left = build(&mut cat, "I", a);
            let right = build(&mut cat, "J", b);
            let mut prev = -1.0f64;
            for lambda in [0.0, 0.25, 0.5, 0.9] {
                let cfg = ExactConfig {
                    score: ScoreConfig::with_lambda(lambda),
                    ..Default::default()
                };
                let out = exact_match(&left, &right, &cat, &cfg);
                assert!(out.optimal);
                let s = out.best.score();
                assert!(
                    s + EPS >= prev,
                    "score decreased as λ grew: {prev} -> {s} at λ={lambda}"
                );
                prev = s;
            }
        },
    );
}

/// The signature algorithm always returns a *valid* match: pairs
/// respect the mode's injectivity, replaying them is feasible, and the
/// reported score equals the replayed score.
#[test]
fn signature_output_is_valid() {
    Runner::new("signature_output_is_valid").cases(64).run(
        |g| (gen_instance(g), gen_instance(g)),
        |(a, b)| {
            let mut cat = fresh_catalog();
            let left = build(&mut cat, "I", a);
            let right = build(&mut cat, "J", b);
            for mode in [
                MatchMode::one_to_one(),
                MatchMode::left_functional(),
                MatchMode::general(),
            ] {
                let cfg = SignatureConfig {
                    mode,
                    ..Default::default()
                };
                let out = signature_match(&left, &right, &cat, &cfg);
                if mode.left_injective {
                    assert!(out.best.is_left_injective());
                }
                if mode.right_injective {
                    assert!(out.best.is_right_injective());
                }
                // Replay: all pairs feasible, same score.
                let mut st = MatchState::new(&left, &right);
                for p in &out.best.pairs {
                    assert!(st.try_push_pair(p.rel, p.left, p.right, false).is_ok());
                }
                let replayed = score_state(&st, &ScoreConfig::default(), &cat).score;
                assert!((replayed - out.best.score()).abs() < EPS);
                // Determinism.
                let again = signature_match(&left, &right, &cat, &cfg);
                assert_eq!(out.best.pairs, again.best.pairs);
            }
        },
    );
}

/// Pushing and popping pairs leaves the match state equivalent to a
/// fresh one (rollback soundness), observed through scores.
#[test]
fn push_pop_is_identity() {
    Runner::new("push_pop_is_identity").cases(64).run(
        |g| (gen_instance(g), gen_instance(g)),
        |(a, b)| {
            let mut cat = fresh_catalog();
            let left = build(&mut cat, "I", a);
            let right = build(&mut cat, "J", b);
            let rel = RelId(0);
            let cfg = ScoreConfig::default();
            let baseline = {
                let st = MatchState::new(&left, &right);
                score_state(&st, &cfg, &cat).score
            };
            let mut st = MatchState::new(&left, &right);
            let lids: Vec<TupleId> = left.tuples(rel).iter().map(|t| t.id()).collect();
            let rids: Vec<TupleId> = right.tuples(rel).iter().map(|t| t.id()).collect();
            let mut pushed = 0;
            for &l in &lids {
                for &r in &rids {
                    if st.try_push_pair(rel, l, r, false).is_ok() {
                        pushed += 1;
                    }
                }
            }
            for _ in 0..pushed {
                st.pop_pair();
            }
            let after = score_state(&st, &cfg, &cat).score;
            assert!((baseline - after).abs() < EPS);
            assert_eq!(st.uf().unions(), 0);
        },
    );
}
