//! Property tests of the sketch-prefiltered search path
//! ([`CatalogIndex::topk`]): for random shared-catalog lakes of small
//! instances (labeled nulls included), `topk` with `k` = the whole catalog
//! must compare every entry and reproduce the brute-force ranking
//! **bit-for-bit** — same names in the same `(score desc, name asc)`
//! order, same score bits, same pair counts — at any comparator thread
//! count. Runs on `ic-testkit`: seeded, reproducible via
//! `IC_TESTKIT_SEED`, shrinking on failure.

use ic_testkit::{Gen, Runner};
use instance_comparison::core::{Comparator, SignatureConfig};
use instance_comparison::index::{CatalogIndex, SearchOptions};
use instance_comparison::model::{Catalog, Instance, RelId, Schema};
use rand::RngExt;
use std::sync::Arc;

/// Descriptor of a random cell: shared constant or a fresh labeled null.
#[derive(Debug, Clone, Copy)]
enum Cell {
    Const(u8),
    Null,
}

/// A full case: the lake's tables (row descriptors) plus which table is
/// the query. Tables draw constants from a small pool so some pairs
/// overlap heavily, some barely, and some not at all.
type Case = (Vec<Vec<[Cell; 2]>>, u8);

fn gen_cell(g: &mut Gen) -> Cell {
    if g.rng().random_bool(0.7) {
        Cell::Const(g.rng().random_range(0..8u8))
    } else {
        Cell::Null
    }
}

fn gen_case(g: &mut Gen) -> Case {
    let mut tables = g.vec_of(6, |g| g.vec_of(5, |g| [gen_cell(g), gen_cell(g)]));
    if tables.is_empty() {
        tables.push(vec![[Cell::Const(0), Cell::Const(1)]]);
    }
    let query = g.rng().random_range(0..64u8);
    (tables, query)
}

/// Materializes a case into one catalog and zero-padded-named instances
/// (so lexicographic name order is table order, making tie-break failures
/// readable). Empty tables are legal lake entries.
fn materialize(case: &Case) -> (Catalog, Vec<Arc<Instance>>) {
    let mut cat = Catalog::new(Schema::single("R", &["A", "B"]));
    let rel = RelId(0);
    let pins = case
        .0
        .iter()
        .enumerate()
        .map(|(i, rows)| {
            let mut inst = Instance::new(&format!("t{i:02}"), &cat);
            for row in rows {
                let vals = row
                    .iter()
                    .map(|&c| match c {
                        Cell::Const(k) => cat.konst(&format!("c{k}")),
                        Cell::Null => cat.fresh_null(),
                    })
                    .collect();
                inst.insert(rel, vals);
            }
            Arc::new(inst)
        })
        .collect();
    (cat, pins)
}

/// The core assertion: `topk(k = catalog)` must compare everything and
/// order exactly like the brute-force scan, bit-identically.
fn assert_topk_is_brute_force(case: &Case, threads: usize) {
    let (cat, pins) = materialize(case);
    let cfg = SignatureConfig::default();
    let index = CatalogIndex::new(&cfg);
    index.sync(pins.iter().map(|p| (p.name(), p)));

    let cmp = Comparator::new(&cat).threads(threads).build().unwrap();
    let query = &pins[case.1 as usize % pins.len()];
    let k = pins.len();
    let out = index
        .topk(query, k, &cmp, &SearchOptions::default())
        .unwrap();
    assert_eq!(out.total, pins.len(), "index must cover the whole lake");
    assert_eq!(
        out.compared, out.total,
        "k = catalog size must defeat the prefilter entirely"
    );

    let mut brute: Vec<(String, f64, usize)> = pins
        .iter()
        .map(|p| {
            let o = cmp.signature(query, p).unwrap();
            (p.name().to_string(), o.best.score(), o.best.pairs.len())
        })
        .collect();
    brute.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));

    assert_eq!(out.hits.len(), brute.len());
    for (hit, (name, score, pairs)) in out.hits.iter().zip(&brute) {
        assert_eq!(
            &hit.name, name,
            "ordering diverged (threads={threads}): index {:?} vs brute {:?}",
            out.hits, brute
        );
        assert_eq!(
            hit.score.to_bits(),
            score.to_bits(),
            "score for {name} not bit-identical (threads={threads})"
        );
        assert_eq!(
            hit.pairs, *pairs,
            "pair count for {name} (threads={threads})"
        );
    }
}

#[test]
fn topk_over_whole_catalog_is_brute_force_ranking_single_thread() {
    Runner::new("search::topk_is_brute_force::threads1")
        .cases(48)
        .run(gen_case, |case| assert_topk_is_brute_force(case, 1));
}

#[test]
fn topk_over_whole_catalog_is_brute_force_ranking_four_threads() {
    Runner::new("search::topk_is_brute_force::threads4")
        .cases(24)
        .run(gen_case, |case| assert_topk_is_brute_force(case, 4));
}
